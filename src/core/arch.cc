#include "core/arch.hh"

#include <cstdio>

#include "core/prefetch_unit.hh"
#include "core/treelet_queue_unit.hh"

namespace trt
{

Gpu::RtUnitFactory
makeRtUnitFactory()
{
    return [](const GpuConfig &cfg, MemorySystem &mem, const Bvh &bvh,
              uint32_t sm_id) -> std::unique_ptr<RtUnitBase> {
        switch (cfg.arch) {
          case RtArch::TreeletPrefetch:
            return std::make_unique<TreeletPrefetchRtUnit>(cfg, mem, bvh,
                                                           sm_id);
          case RtArch::TreeletQueues:
            return std::make_unique<TreeletQueueRtUnit>(cfg, mem, bvh,
                                                        sm_id);
          case RtArch::Baseline:
          default:
            return std::make_unique<BaselineRtUnit>(cfg, mem, bvh, sm_id);
        }
    };
}

RunStats
simulate(const GpuConfig &cfg, const Scene &scene, const Bvh &bvh)
{
    Gpu gpu(cfg, scene, bvh, makeRtUnitFactory());
    return gpu.run();
}

RunStats
simulateRays(const GpuConfig &cfg, const Scene &scene, const Bvh &bvh,
             const std::vector<Ray> &rays)
{
    GpuConfig c = cfg;
    c.maxBounces = 0; // queries are a single trace per thread
    Gpu gpu(c, scene, bvh, makeRtUnitFactory(), &rays);
    return gpu.run();
}

RunStats
simulateWithSnapshots(const GpuConfig &cfg, const Scene &scene,
                      const Bvh &bvh, const SnapshotPolicy &policy,
                      bool resume)
{
    Gpu gpu(cfg, scene, bvh, makeRtUnitFactory());
    gpu.setSnapshotPolicy(policy);
    if (resume) {
        auto path = findNewestValidSnapshot(policy.dir, policy.worldFp);
        if (path) {
            try {
                std::vector<uint8_t> payload =
                    readSnapshotPayload(*path, policy.worldFp);
                Deserializer d(payload);
                gpu.loadState(d);
                fprintf(stderr, "[snapshot] resuming from %s (cycle %llu)\n",
                        path->string().c_str(),
                        (unsigned long long)gpu.restoredCycle());
            } catch (const SnapshotError &e) {
                fprintf(stderr,
                        "[snapshot] %s: %s; falling back to a cold run\n",
                        path->string().c_str(), e.what());
                // A partial loadState leaves the Gpu inconsistent:
                // rebuild it from scratch for the cold run.
                Gpu cold(cfg, scene, bvh, makeRtUnitFactory());
                cold.setSnapshotPolicy(policy);
                return cold.run();
            }
        }
    }
    return gpu.run();
}

RunStats
simulateSampled(const GpuConfig &cfg, const Scene &scene, const Bvh &bvh,
                const SampleConfig &sample, const SnapshotPolicy &policy,
                bool resume)
{
    Gpu gpu(cfg, scene, bvh, makeRtUnitFactory());
    gpu.setSnapshotPolicy(policy);
    if (resume) {
        auto path = findNewestValidSnapshot(policy.dir, policy.worldFp);
        if (path) {
            try {
                std::vector<uint8_t> payload =
                    readSnapshotPayload(*path, policy.worldFp);
                Deserializer d(payload);
                gpu.loadState(d);
                fprintf(stderr,
                        "[snapshot] resuming sampled run from %s "
                        "(cycle %llu)\n",
                        path->string().c_str(),
                        (unsigned long long)gpu.restoredCycle());
            } catch (const SnapshotError &e) {
                fprintf(stderr,
                        "[snapshot] %s: %s; falling back to a cold run\n",
                        path->string().c_str(), e.what());
                Gpu cold(cfg, scene, bvh, makeRtUnitFactory());
                cold.setSnapshotPolicy(policy);
                return cold.runSampled(sample);
            }
        }
    }
    return gpu.runSampled(sample);
}

} // namespace trt
