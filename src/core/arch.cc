#include "core/arch.hh"

#include "core/prefetch_unit.hh"
#include "core/treelet_queue_unit.hh"

namespace trt
{

Gpu::RtUnitFactory
makeRtUnitFactory()
{
    return [](const GpuConfig &cfg, MemorySystem &mem, const Bvh &bvh,
              uint32_t sm_id) -> std::unique_ptr<RtUnitBase> {
        switch (cfg.arch) {
          case RtArch::TreeletPrefetch:
            return std::make_unique<TreeletPrefetchRtUnit>(cfg, mem, bvh,
                                                           sm_id);
          case RtArch::TreeletQueues:
            return std::make_unique<TreeletQueueRtUnit>(cfg, mem, bvh,
                                                        sm_id);
          case RtArch::Baseline:
          default:
            return std::make_unique<BaselineRtUnit>(cfg, mem, bvh, sm_id);
        }
    };
}

RunStats
simulate(const GpuConfig &cfg, const Scene &scene, const Bvh &bvh)
{
    Gpu gpu(cfg, scene, bvh, makeRtUnitFactory());
    return gpu.run();
}

RunStats
simulateRays(const GpuConfig &cfg, const Scene &scene, const Bvh &bvh,
             const std::vector<Ray> &rays)
{
    GpuConfig c = cfg;
    c.maxBounces = 0; // queries are a single trace per thread
    Gpu gpu(c, scene, bvh, makeRtUnitFactory(), &rays);
    return gpu.run();
}

} // namespace trt
