#include "farm/manifest.hh"

#include <fstream>
#include <sstream>
#include <unordered_set>

#include "farm/json.hh"
#include "util/env.hh"

namespace trt
{

namespace
{

/** Apply one knob (JobSpec serialization key) from a JSON scalar,
 *  with env.hh-strict validation. Reuses JobSpec::deserialize so the
 *  manifest and the wire format accept exactly the same keys. */
void
applyKnob(JobSpec &spec, const std::string &key, const JsonValue &v,
          const std::string &what)
{
    if (!v.isScalar())
        throw EnvError(what + ": expected a scalar value");
    // Round-trip through the line format: serialize the current spec,
    // overwrite the one key, re-parse. Validation (unknown key, value
    // range/format) lives in exactly one place this way. A still-empty
    // scene (the "defaults" block) gets a placeholder so deserialize's
    // scene-required check doesn't fire prematurely.
    JobSpec base = spec;
    bool placeholder = base.scene.empty();
    if (placeholder)
        base.scene = "?";
    std::string text = base.serialize();
    std::string line = key + "=" + v.text + "\n";
    std::string patched;
    bool replaced = false;
    std::istringstream is(text);
    std::string l;
    while (std::getline(is, l)) {
        if (l.compare(0, key.size() + 1, key + "=") == 0) {
            patched += line;
            replaced = true;
        } else {
            patched += l + "\n";
        }
    }
    if (!replaced)
        patched += line; // Unknown key: deserialize() rejects it below.
    spec = JobSpec::deserialize(patched, what);
    if (placeholder && spec.scene == "?")
        spec.scene.clear();
}

void
applyKnobObject(JobSpec &spec, const JsonValue &obj,
                const std::string &what)
{
    for (const auto &[key, v] : obj.members)
        applyKnob(spec, key, v, what);
}

std::vector<std::string>
stringArray(const JsonValue &v, const std::string &what)
{
    if (!v.isArray())
        throw EnvError(what + ": expected an array of strings");
    std::vector<std::string> out;
    for (const JsonValue &e : v.items) {
        if (!e.isString())
            throw EnvError(what + ": expected an array of strings");
        out.push_back(e.text);
    }
    return out;
}

} // anonymous namespace

Manifest
Manifest::parse(const std::string &text, const std::string &origin)
{
    JsonValue doc = JsonValue::parse(text, origin);
    if (!doc.isObject())
        throw EnvError(origin + ": manifest must be a JSON object");

    Manifest m;
    JobSpec defaults;
    std::vector<std::string> scenes;
    std::vector<std::string> configs{"baseline"};
    const JsonValue *grid = nullptr;
    const JsonValue *explicit_jobs = nullptr;

    for (const auto &[key, v] : doc.members) {
        std::string what = origin + "." + key;
        if (key == "name") {
            if (!v.isString() || v.text.empty())
                throw EnvError(what + ": expected a non-empty string");
            m.name = v.text;
        } else if (key == "defaults") {
            if (!v.isObject())
                throw EnvError(what + ": expected an object");
            applyKnobObject(defaults, v, what);
        } else if (key == "scenes") {
            scenes = stringArray(v, what);
        } else if (key == "configs") {
            configs = stringArray(v, what);
            if (configs.empty())
                throw EnvError(what + ": expected at least one config");
        } else if (key == "grid") {
            if (!v.isObject())
                throw EnvError(what + ": expected an object of arrays");
            grid = &v;
        } else if (key == "jobs") {
            if (!v.isArray())
                throw EnvError(what + ": expected an array of objects");
            explicit_jobs = &v;
        } else {
            throw EnvError(origin + ": unknown key \"" + key + "\"");
        }
    }
    if (scenes.empty() && !explicit_jobs)
        throw EnvError(origin +
                       ": manifest needs \"scenes\" or \"jobs\"");

    // Cross-product expansion: scenes × configs × grid axes, axes in
    // declaration order with the last axis fastest-varying.
    std::vector<JobSpec> expanded;
    if (!scenes.empty()) {
        std::vector<JobSpec> combos{defaults};
        if (grid) {
            for (const auto &[axis, values] : grid->members) {
                std::string what = origin + ".grid." + axis;
                if (!values.isArray() || values.items.empty())
                    throw EnvError(what +
                                   ": expected a non-empty array");
                std::vector<JobSpec> nxt;
                nxt.reserve(combos.size() * values.items.size());
                for (const JobSpec &base : combos)
                    for (const JsonValue &v : values.items) {
                        JobSpec s = base;
                        applyKnob(s, axis, v, what);
                        nxt.push_back(std::move(s));
                    }
                combos = std::move(nxt);
            }
        }
        for (const std::string &scene : scenes)
            for (const std::string &config : configs)
                for (const JobSpec &base : combos) {
                    JobSpec s = base;
                    s.scene = scene;
                    s.config = config;
                    expanded.push_back(std::move(s));
                }
    }
    if (explicit_jobs) {
        size_t idx = 0;
        for (const JsonValue &jv : explicit_jobs->items) {
            std::string what =
                origin + ".jobs[" + std::to_string(idx++) + "]";
            if (!jv.isObject())
                throw EnvError(what + ": expected an object");
            JobSpec s = defaults;
            applyKnobObject(s, jv, what);
            if (s.scene.empty())
                throw EnvError(what + ": missing \"scene\"");
            expanded.push_back(std::move(s));
        }
    }

    // Materialize every job once up front — an invalid config name or
    // BVH width anywhere in the matrix fails the whole manifest before
    // any work starts — and drop exact duplicates (same fingerprint =
    // same simulation) keep-first.
    std::unordered_set<uint64_t> seen;
    for (JobSpec &s : expanded) {
        uint64_t fp = s.fingerprint();
        if (seen.insert(fp).second)
            m.jobs.push_back(std::move(s));
        else
            m.duplicates++;
    }
    return m;
}

Manifest
Manifest::load(const std::string &path)
{
    std::ifstream is(path);
    if (!is)
        throw EnvError("manifest \"" + path + "\": cannot open");
    std::ostringstream ss;
    ss << is.rdbuf();
    return parse(ss.str(), path);
}

} // namespace trt
