/**
 * @file
 * The farm worker: one forked child per pool slot (DESIGN.md §13).
 *
 * workerMain() loops reading Job frames from the scheduler, executes
 * each through the shared JobRunner path (harness/job.hh — run cache,
 * snapshots, sampled or full simulation), and replies with one Result
 * (or Error) frame. While a job simulates, a heartbeat thread pings
 * the scheduler every heartbeatMs so a hung simulation is
 * distinguishable from a slow one.
 *
 * Deterministic crash injection (tests + the CI farm-smoke job): when
 * crashSentinel names a path, the first worker to create it — open()
 * with O_CREAT|O_EXCL, so exactly one pool-wide winner per sweep —
 * arms SnapshotPolicy::haltAtCycle at crashAtCycle and SIGKILLs itself
 * when the halt fires. The snapshot is already on disk at that point,
 * so the scheduler's retry (which sets resume) continues the very same
 * simulation; DESIGN.md §7 guarantees the result is bit-identical to
 * an uninterrupted run.
 */

#ifndef TRT_FARM_WORKER_HH
#define TRT_FARM_WORKER_HH

#include <cstdint>
#include <string>

namespace trt
{

struct WorkerOptions
{
    /** SM tick threads per worker (JobRunnerOptions::simThreads). */
    uint32_t simThreads = 1;
    /** Heartbeat period while a job is simulating. */
    uint32_t heartbeatMs = 500;
    /** Crash-injection sentinel path; empty = no injection. */
    std::string crashSentinel;
    /** Cycle at which the injected crash fires. */
    uint64_t crashAtCycle = 20000;
};

/**
 * Serve jobs from @p jobFd, replies to @p resultFd, until a Shutdown
 * frame or EOF. Returns the process exit code. The caller (a forked
 * child) must _exit() with it — running atexit handlers would flush
 * the parent's inherited state twice.
 */
int workerMain(int jobFd, int resultFd, const WorkerOptions &opt);

} // namespace trt

#endif // TRT_FARM_WORKER_HH
