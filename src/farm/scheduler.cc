#include "farm/scheduler.hh"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <deque>
#include <filesystem>
#include <fstream>
#include <sstream>

#include <fcntl.h>
#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>

#include "farm/protocol.hh"
#include "farm/worker.hh"
#include "harness/run_cache.hh"
#include "util/env.hh"

namespace trt
{

namespace
{

uint64_t
nowMs()
{
    return uint64_t(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

/** Exponential backoff before re-dispatching attempt @p attempts+1. */
uint64_t
backoffMs(uint32_t attempts)
{
    uint32_t shift = std::min<uint32_t>(attempts > 0 ? attempts - 1 : 0,
                                        6); // cap at 32 s
    return 500ull << shift;
}

struct Worker
{
    pid_t pid = -1;
    int jobFd = -1; //!< Scheduler → worker (blocking writes).
    int resFd = -1; //!< Worker → scheduler (non-blocking reads).
    FrameReader reader;
    int64_t job = -1; //!< In-flight job index; -1 = idle.
    uint64_t jobStartMs = 0;
    uint64_t lastBeatMs = 0;
    bool timedOut = false; //!< We SIGKILLed it for blowing the cap.

    bool live() const { return pid > 0; }
    bool busy() const { return live() && job >= 0; }
};

class Scheduler
{
  public:
    Scheduler(const Manifest &manifest, const FarmOptions &opt)
        : manifest_(manifest), opt_(opt)
    {
    }

    FarmResult run()
    {
        uint64_t t0 = nowMs();
        size_t n = manifest_.jobs.size();
        res_.jobs.resize(n);
        attempts_.assign(n, 0);
        resume_.assign(n, false);
        state_.assign(n, State::Pending);
        for (size_t i = 0; i < n; i++) {
            res_.jobs[i].spec = manifest_.jobs[i];
            res_.jobs[i].fingerprint = manifest_.jobs[i].fingerprint();
        }

        if (opt_.dryRun) {
            dryRun();
            res_.wallMs = nowMs() - t0;
            return std::move(res_);
        }

        openStreams();
        cachePrepass();
        for (size_t i = 0; i < n; i++)
            if (state_[i] == State::Pending)
                ready_.push_back(i);

        if (!ready_.empty()) {
            if (opt_.serial || opt_.workers == 0)
                runSerial();
            else
                runParallel();
        }

        writeCsv();
        res_.wallMs = nowMs() - t0;
        return std::move(res_);
    }

  private:
    enum class State : uint8_t
    {
        Pending,
        InFlight,
        Backoff,
        Done,
        Failed
    };

    void dryRun()
    {
        size_t cached = 0;
        for (size_t i = 0; i < res_.jobs.size(); i++) {
            const JobRecord &r = res_.jobs[i];
            bool hit = cachedRunExists(r.fingerprint, r.spec.scene);
            cached += hit;
            std::printf("[farm] job=%zu %s fp=%016llx cached=%s\n", i,
                        r.spec.label().c_str(),
                        (unsigned long long)r.fingerprint,
                        hit ? "yes" : "no");
        }
        std::printf("[farm] plan jobs=%zu cached=%zu to_run=%zu "
                    "duplicates_dropped=%zu\n",
                    res_.jobs.size(), cached, res_.jobs.size() - cached,
                    manifest_.duplicates);
    }

    void openStreams()
    {
        std::error_code ec;
        std::filesystem::create_directories(opt_.outDir, ec);
        jsonl_.open(std::filesystem::path(opt_.outDir) /
                    (manifest_.name + ".jsonl"));
    }

    void cachePrepass()
    {
        for (size_t i = 0; i < res_.jobs.size(); i++) {
            JobRecord &r = res_.jobs[i];
            if (!loadCachedRun(r.fingerprint, r.spec.scene, r.stats))
                continue;
            r.cacheHit = true;
            state_[i] = State::Done;
            res_.cached++;
            stream(i);
        }
    }

    void finishJob(size_t idx, const JobOutcome &out)
    {
        JobRecord &r = res_.jobs[idx];
        r.stats = out.stats;
        r.cacheHit = out.cacheHit;
        r.wallMs += out.wallMs;
        r.attempts = attempts_[idx];
        state_[idx] = State::Done;
        res_.simulated++;
        if (!out.cacheHit)
            simWallMs_ += out.wallMs;
        stream(idx);
    }

    /** A dispatch ended badly: retry with backoff or declare failure.
     *  @p crashed marks worker-death/timeouts — their retry resumes
     *  from the crash snapshot when one exists. */
    void failAttempt(size_t idx, bool crashed, const std::string &why)
    {
        if (attempts_[idx] > opt_.retries) {
            JobRecord &r = res_.jobs[idx];
            r.failed = true;
            r.error = why;
            r.attempts = attempts_[idx];
            state_[idx] = State::Failed;
            res_.failed++;
            stream(idx);
            std::fprintf(stderr,
                         "[farm] job=%zu %s FAILED after %u attempts: "
                         "%s\n",
                         idx, r.spec.label().c_str(), attempts_[idx],
                         why.c_str());
            return;
        }
        res_.retries++;
        if (crashed)
            resume_[idx] = true;
        state_[idx] = State::Backoff;
        backoff_.emplace_back(nowMs() + backoffMs(attempts_[idx]), idx);
        std::fprintf(stderr,
                     "[farm] job=%zu %s attempt %u failed (%s), "
                     "retrying%s\n",
                     idx, res_.jobs[idx].spec.label().c_str(),
                     attempts_[idx], why.c_str(),
                     crashed ? " with resume" : "");
    }

    void stream(size_t idx)
    {
        if (!jsonl_)
            return;
        jsonl_ << jobJsonLine(idx, res_.jobs[idx]) << "\n";
        jsonl_.flush();
    }

    size_t terminalCount() const
    {
        size_t n = 0;
        for (State s : state_)
            n += (s == State::Done || s == State::Failed);
        return n;
    }

    // ---- serial path -------------------------------------------------

    void runSerial()
    {
        JobRunnerOptions ropt;
        ropt.simThreads = opt_.simThreads;
        while (!ready_.empty()) {
            size_t idx = ready_.front();
            ready_.pop_front();
            attempts_[idx]++;
            state_[idx] = State::InFlight;
            try {
                finishJob(idx, runJob(res_.jobs[idx].spec, ropt));
            } catch (const std::exception &e) {
                failAttempt(idx, false, e.what());
                drainBackoffInto(ready_, UINT64_MAX);
            }
            progressMaybe();
        }
    }

    // ---- parallel path -----------------------------------------------

    void drainBackoffInto(std::deque<size_t> &out, uint64_t now)
    {
        for (auto it = backoff_.begin(); it != backoff_.end();) {
            if (it->first <= now) {
                state_[it->second] = State::Pending;
                out.push_back(it->second);
                it = backoff_.erase(it);
            } else {
                ++it;
            }
        }
    }

    void spawnWorker(Worker &w)
    {
        int job_pipe[2], res_pipe[2];
        if (::pipe(job_pipe) != 0)
            throw EnvError("farm: pipe() failed");
        if (::pipe(res_pipe) != 0) {
            ::close(job_pipe[0]);
            ::close(job_pipe[1]);
            throw EnvError("farm: pipe() failed");
        }
        pid_t pid = ::fork();
        if (pid < 0) {
            for (int fd : {job_pipe[0], job_pipe[1], res_pipe[0],
                           res_pipe[1]})
                ::close(fd);
            throw EnvError("farm: fork() failed");
        }
        if (pid == 0) {
            // Child: keep only this worker's pipe ends. Inherited fds
            // of sibling workers would hold their pipes open and mask
            // their deaths from the scheduler.
            ::close(job_pipe[1]);
            ::close(res_pipe[0]);
            for (const Worker &o : workers_) {
                if (o.jobFd >= 0)
                    ::close(o.jobFd);
                if (o.resFd >= 0)
                    ::close(o.resFd);
            }
            WorkerOptions wopt;
            wopt.simThreads = opt_.simThreads;
            wopt.heartbeatMs = opt_.heartbeatMs;
            wopt.crashSentinel = opt_.injectCrashSentinel;
            wopt.crashAtCycle = opt_.injectCrashAtCycle;
            // _exit, not exit: atexit handlers (harness summary) and
            // stdio flushes belong to the scheduler process.
            ::_exit(workerMain(job_pipe[0], res_pipe[1], wopt));
        }
        ::close(job_pipe[0]);
        ::close(res_pipe[1]);
        ::fcntl(res_pipe[0], F_SETFL,
                ::fcntl(res_pipe[0], F_GETFL) | O_NONBLOCK);
        w.pid = pid;
        w.jobFd = job_pipe[1];
        w.resFd = res_pipe[0];
        w.reader = FrameReader{};
        w.job = -1;
        w.timedOut = false;
    }

    void reapWorker(Worker &w)
    {
        if (w.jobFd >= 0)
            ::close(w.jobFd);
        if (w.resFd >= 0)
            ::close(w.resFd);
        if (w.pid > 0)
            ::waitpid(w.pid, nullptr, 0);
        w.pid = -1;
        w.jobFd = -1;
        w.resFd = -1;
    }

    void dispatch(Worker &w, size_t idx)
    {
        attempts_[idx]++;
        state_[idx] = State::InFlight;
        w.job = int64_t(idx);
        w.jobStartMs = nowMs();
        w.lastBeatMs = w.jobStartMs;
        bool resume = resume_[idx];
        if (!writeFrame(w.jobFd, FarmMsg::Job,
                        encodeJob(idx, res_.jobs[idx].spec, resume)))
            workerDied(w); // Already-dead worker: retry elsewhere.
    }

    /** The pipe went EOF (or a write failed): the worker is gone. */
    void workerDied(Worker &w)
    {
        res_.workerCrashes++;
        if (w.job >= 0) {
            size_t idx = size_t(w.job);
            res_.jobs[idx].wallMs += nowMs() - w.jobStartMs;
            failAttempt(idx, true,
                        w.timedOut ? "timeout (SIGKILL)"
                                   : "worker died");
            w.job = -1;
        }
        reapWorker(w);
    }

    /** Drain the fd, process every complete frame, then handle EOF.
     *  Ordering matters: a SIGKILLed worker's final Result can already
     *  sit in the pipe buffer — it must land before the death is
     *  scored, or a finished job would be pointlessly retried.
     *  Returns false when the worker died (and has been handled). */
    bool serviceWorker(Worker &w)
    {
        bool dead = false;
        for (;;) {
            int n = w.reader.pump(w.resFd);
            if (n < 0) {
                dead = true;
                break;
            }
            if (n == 0)
                break; // EAGAIN: everything currently readable is in.
        }
        FarmMsg type;
        std::string payload;
        while (w.reader.next(type, payload)) {
            switch (type) {
            case FarmMsg::Heartbeat: {
                uint64_t idx;
                if (decodeHeartbeat(payload, idx))
                    w.lastBeatMs = nowMs();
                break;
            }
            case FarmMsg::Result: {
                uint64_t idx;
                JobOutcome out;
                if (decodeResult(payload, idx, out) &&
                    int64_t(idx) == w.job) {
                    w.job = -1;
                    finishJob(size_t(idx), out);
                }
                break;
            }
            case FarmMsg::Error: {
                uint64_t idx;
                std::string msg;
                decodeError(payload, idx, msg);
                if (int64_t(idx) == w.job) {
                    w.job = -1;
                    failAttempt(size_t(idx), false, msg);
                }
                break;
            }
            default:
                break;
            }
        }
        if (dead) {
            workerDied(w);
            return false;
        }
        return true;
    }

    void progressMaybe()
    {
        uint64_t now = nowMs();
        if (now - lastProgressMs_ < uint64_t(opt_.progressS * 1000))
            return;
        lastProgressMs_ = now;
        size_t done = terminalCount();
        size_t total = res_.jobs.size();
        // ETA from the average wall time of completed simulations,
        // scaled by live parallelism.
        double avg_ms = res_.simulated
                            ? double(simWallMs_) / res_.simulated
                            : 0.0;
        size_t remaining = total - done;
        uint32_t lanes = std::max<uint32_t>(
            1, opt_.serial ? 1 : opt_.workers);
        std::fprintf(stderr,
                     "[farm] progress done=%zu/%zu cached=%u failed=%u "
                     "retries=%u eta=%.0fs\n",
                     done, total, res_.cached, res_.failed, res_.retries,
                     avg_ms * double(remaining) / (1000.0 * lanes));
    }

    void runParallel()
    {
        // Workers that die mid-write must not take the scheduler down.
        ::signal(SIGPIPE, SIG_IGN);
        workers_.resize(opt_.workers);

        while (terminalCount() < res_.jobs.size()) {
            uint64_t now = nowMs();
            drainBackoffInto(ready_, now);

            // Keep the pool sized to the work: live workers ≤ max(
            // ready + in-flight, 1), spawning lazily.
            for (Worker &w : workers_) {
                if (ready_.empty())
                    break;
                if (!w.live())
                    spawnWorker(w);
                if (!w.busy()) {
                    size_t idx = ready_.front();
                    ready_.pop_front();
                    dispatch(w, idx);
                }
            }

            // Per-attempt wall timeout: SIGKILL; death is then seen as
            // pipe EOF below, which routes into the retry path. Re-read
            // the clock: dispatch() above stamped jobStartMs after the
            // loop-top `now`, and an unsigned now-jobStartMs underflow
            // would look like an instant timeout.
            now = nowMs();
            uint64_t timeout_ms = uint64_t(opt_.timeoutS * 1000);
            for (Worker &w : workers_) {
                if (w.busy() && !w.timedOut && now >= w.jobStartMs &&
                    now - w.jobStartMs > timeout_ms) {
                    w.timedOut = true;
                    ::kill(w.pid, SIGKILL);
                }
            }

            // Poll live workers; wake up for the next backoff expiry
            // or timeout deadline even if nothing lands.
            std::vector<pollfd> pfds;
            std::vector<size_t> pidx;
            for (size_t i = 0; i < workers_.size(); i++) {
                if (workers_[i].live()) {
                    pfds.push_back(
                        {workers_[i].resFd, POLLIN, 0});
                    pidx.push_back(i);
                }
            }
            if (pfds.empty()) {
                if (ready_.empty() && backoff_.empty())
                    break; // Nothing live, nothing runnable: done.
                uint64_t wake = UINT64_MAX;
                for (const auto &[at, idx] : backoff_)
                    wake = std::min(wake, at);
                if (wake != UINT64_MAX && wake > now)
                    ::usleep(useconds_t(
                        std::min<uint64_t>(wake - now, 1000) * 1000));
                continue;
            }
            ::poll(pfds.data(), nfds_t(pfds.size()), 250);
            for (size_t k = 0; k < pfds.size(); k++) {
                if (pfds[k].revents & (POLLIN | POLLHUP | POLLERR))
                    serviceWorker(workers_[pidx[k]]);
            }
            progressMaybe();
        }

        // Orderly shutdown: idle workers get a Shutdown frame and a
        // closed job pipe, then are reaped.
        for (Worker &w : workers_) {
            if (!w.live())
                continue;
            writeFrame(w.jobFd, FarmMsg::Shutdown, "");
            reapWorker(w);
        }
    }

    void writeCsv()
    {
        std::ofstream csv(std::filesystem::path(opt_.outDir) /
                          (manifest_.name + ".csv"));
        if (!csv)
            return;
        csv << jobCsvHeader() << "\n";
        for (size_t i = 0; i < res_.jobs.size(); i++) {
            if (state_[i] == State::Done)
                csv << jobCsvRow(i, res_.jobs[i]) << "\n";
        }
    }

    const Manifest &manifest_;
    const FarmOptions &opt_;
    FarmResult res_;
    std::vector<uint32_t> attempts_;
    std::vector<char> resume_; // vector<bool> is bit-packed; avoid.
    std::vector<State> state_;
    std::deque<size_t> ready_;
    std::vector<std::pair<uint64_t, size_t>> backoff_; // (readyAtMs, idx)
    std::vector<Worker> workers_;
    std::ofstream jsonl_;
    uint64_t lastProgressMs_ = 0;
    uint64_t simWallMs_ = 0;
};

} // anonymous namespace

FarmOptions
FarmOptions::fromEnv()
{
    FarmOptions o;
    o.workers = uint32_t(envUInt("TRT_FARM_WORKERS", o.workers, 256));
    o.retries = uint32_t(envUInt("TRT_FARM_RETRIES", o.retries, 100));
    o.timeoutS = envDouble("TRT_FARM_TIMEOUT_S", o.timeoutS);
    if (o.timeoutS <= 0)
        throw EnvError("TRT_FARM_TIMEOUT_S: expected a positive number");
    o.injectCrashSentinel = envString("TRT_FARM_INJECT_CRASH", "");
    o.injectCrashAtCycle =
        envUInt("TRT_FARM_INJECT_CRASH_AT", o.injectCrashAtCycle);
    return o;
}

std::string
FarmResult::summaryLine() const
{
    std::ostringstream ss;
    ss << "[farm] done jobs=" << jobs.size() << " cached=" << cached
       << " simulated=" << simulated << " failed=" << failed
       << " retries=" << retries << " worker_crashes=" << workerCrashes
       << " wall=" << (wallMs / 1000) << "." << (wallMs % 1000) / 100
       << "s";
    return ss.str();
}

FarmResult
runFarm(const Manifest &manifest, const FarmOptions &opt)
{
    return Scheduler(manifest, opt).run();
}

} // namespace trt
