#include "farm/aggregate.hh"

#include <cstdio>
#include <sstream>

#include "gpu/run_stats_io.hh"
#include "memsys/memsys.hh"

namespace trt
{

namespace
{

std::string
fpHex(uint64_t fp)
{
    char buf[19];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  (unsigned long long)fp);
    return buf;
}

std::string
fixed(double v, int digits)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
    return buf;
}

/** JSON string escaping for error messages and labels. */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    for (char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
            if ((unsigned char)c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // anonymous namespace

std::string
jobCsvHeader()
{
    return "index,scene,config,res,scale,bvh_width,sampled,"
           "fingerprint,stats_fingerprint,cycles,rays,"
           "simt_efficiency,bvh_l1_miss_rate,bvh_dram_accesses,"
           "bvh_l2_accesses";
}

std::string
jobCsvRow(size_t index, const JobRecord &r)
{
    const RunStats &st = r.stats;
    const MemClassStats &bvh = st.memClass(MemClass::BvhNode);
    std::ostringstream ss;
    ss << index << "," << r.spec.scene << "," << r.spec.config << ","
       << r.spec.resolution << "," << fixed(r.spec.scale, 4) << ","
       << r.spec.bvhWidth << "," << (r.spec.sample.enabled ? 1 : 0)
       << "," << fpHex(r.fingerprint) << ","
       << fpHex(RunStatsIo::fingerprint(st)) << "," << st.cycles << ","
       << st.raysTraced << "," << fixed(st.simtEfficiency(), 6) << ","
       << fixed(st.bvhL1MissRate, 6) << "," << bvh.dramAccesses << ","
       << bvh.l2Accesses;
    return ss.str();
}

std::string
jobJsonLine(size_t index, const JobRecord &r)
{
    std::ostringstream ss;
    ss << "{\"index\":" << index << ",\"label\":\""
       << jsonEscape(r.spec.label()) << "\",\"fingerprint\":\""
       << fpHex(r.fingerprint) << "\"";
    if (r.failed) {
        ss << ",\"status\":\"failed\",\"error\":\""
           << jsonEscape(r.error) << "\"";
    } else {
        ss << ",\"status\":\"done\",\"cache_hit\":"
           << (r.cacheHit ? "true" : "false") << ",\"stats_fingerprint\":\""
           << fpHex(RunStatsIo::fingerprint(r.stats))
           << "\",\"cycles\":" << r.stats.cycles
           << ",\"rays\":" << r.stats.raysTraced;
    }
    ss << ",\"attempts\":" << r.attempts << ",\"wall_ms\":" << r.wallMs
       << "}";
    return ss.str();
}

} // namespace trt
