/**
 * @file
 * Farm result aggregation (DESIGN.md §13).
 *
 * Two output streams per sweep, under the farm's --out directory:
 *
 *   <name>.jsonl — one line per job, appended the moment the result
 *     lands (live streaming; survives a killed scheduler). Carries
 *     everything including the nondeterministic fields (wall_ms,
 *     attempts, worker pid events live in the log, not here).
 *
 *   <name>.csv — written once at the end, in manifest expansion order,
 *     deterministic columns only (spec identity + RunStats-derived
 *     values + the RunStatsIo fingerprint). Two sweeps over the same
 *     manifest and simulator build produce byte-identical CSVs no
 *     matter the worker count, crash injection, or cache state — the
 *     property the CI farm-smoke job diffs for. Failed jobs are
 *     omitted, so a lossy sweep can never diff clean.
 */

#ifndef TRT_FARM_AGGREGATE_HH
#define TRT_FARM_AGGREGATE_HH

#include <cstdint>
#include <string>

#include "harness/job.hh"

namespace trt
{

/** One job's terminal state, as the aggregator sees it. */
struct JobRecord
{
    JobSpec spec;
    RunStats stats;
    uint64_t fingerprint = 0; //!< Run-cache key.
    bool cacheHit = false;    //!< Served from the run cache.
    uint32_t attempts = 0;    //!< 0 = never dispatched (cache prepass).
    bool failed = false;
    std::string error;        //!< Failure reason when failed.
    uint64_t wallMs = 0;
};

/** Header line for the deterministic CSV (no trailing newline). */
std::string jobCsvHeader();

/** Deterministic CSV row for a completed job (no trailing newline). */
std::string jobCsvRow(size_t index, const JobRecord &r);

/** Streaming JSONL line, completed or failed (no trailing newline). */
std::string jobJsonLine(size_t index, const JobRecord &r);

} // namespace trt

#endif // TRT_FARM_AGGREGATE_HH
