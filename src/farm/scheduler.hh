/**
 * @file
 * The farm scheduler: manifest in, aggregated results out
 * (DESIGN.md §13).
 *
 * runFarm() expands nothing itself — it takes an already-expanded
 * Manifest — and drives it to completion:
 *
 *   1. Cache prepass: jobs whose fingerprint already has a run-cache
 *      blob complete immediately (counted as "cached" in the summary —
 *      the observable dedup-against-the-cache the ISSUE asks for).
 *   2. Dispatch: remaining jobs go to a pool of forked workers over
 *      the pipe protocol (farm/protocol.hh), one in-flight job per
 *      worker, scheduler single-threaded around poll().
 *   3. Supervision: per-job wall timeout (a worker that blows it is
 *      SIGKILLed), heartbeat tracking, worker death detection via pipe
 *      EOF + waitpid.
 *   4. Retry: a crashed/timed-out/errored job goes back in the queue
 *      with exponential backoff (0.5 s × 2^(attempt-1)) up to
 *      FarmOptions::retries extra attempts; retries after a crash set
 *      resume so the snapshot/--resume path (DESIGN.md §7) continues
 *      the interrupted simulation bit-identically.
 *   5. Streaming: each terminal job appends one JSONL line; a progress
 *      line (done/cached/failed/ETA) prints every progressS seconds;
 *      the deterministic CSV is written at the end in manifest order.
 */

#ifndef TRT_FARM_SCHEDULER_HH
#define TRT_FARM_SCHEDULER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "farm/aggregate.hh"
#include "farm/manifest.hh"

namespace trt
{

struct FarmOptions
{
    uint32_t workers = 2;  //!< Pool size (TRT_FARM_WORKERS).
    uint32_t retries = 2;  //!< Extra attempts/job (TRT_FARM_RETRIES).
    double timeoutS = 600; //!< Per-attempt wall cap (TRT_FARM_TIMEOUT_S).
    bool serial = false;   //!< In-process, no forks (golden runs).
    bool dryRun = false;   //!< Print the plan, run nothing.
    std::string outDir = "results/farm"; //!< CSV/JSONL destination.
    uint32_t simThreads = 1; //!< SM tick threads per worker.
    double progressS = 5.0;  //!< Progress summary period.
    uint32_t heartbeatMs = 500;
    /** Crash injection (tests/CI): sentinel path + firing cycle,
     *  TRT_FARM_INJECT_CRASH / TRT_FARM_INJECT_CRASH_AT. */
    std::string injectCrashSentinel;
    uint64_t injectCrashAtCycle = 20000;

    /** Read the TRT_FARM_* knobs (strict; EnvError on bad values). */
    static FarmOptions fromEnv();
};

struct FarmResult
{
    std::vector<JobRecord> jobs; //!< Manifest expansion order.
    uint32_t simulated = 0;      //!< Ran on a worker (or serially).
    uint32_t cached = 0;         //!< Skipped via the run-cache prepass.
    uint32_t failed = 0;
    uint32_t retries = 0;        //!< Re-dispatches (all causes).
    uint32_t workerCrashes = 0;  //!< Pipe-EOF worker deaths observed.
    uint64_t wallMs = 0;

    bool ok() const { return failed == 0; }
    std::string summaryLine() const; //!< The "[farm] done ..." line.
};

/** Drive @p manifest to completion (or print the --dry-run plan). */
FarmResult runFarm(const Manifest &manifest, const FarmOptions &opt);

} // namespace trt

#endif // TRT_FARM_SCHEDULER_HH
