#include "farm/json.hh"

#include <cctype>

#include "util/env.hh"

namespace trt
{

namespace
{

class Parser
{
  public:
    Parser(const std::string &text, const std::string &origin)
        : text_(text), origin_(origin)
    {
    }

    JsonValue document()
    {
        JsonValue v = value();
        skipWs();
        if (pos_ != text_.size())
            fail("trailing content after document");
        return v;
    }

  private:
    [[noreturn]] void fail(const std::string &what) const
    {
        throw EnvError(origin_ + ":" + std::to_string(line_) + ": " +
                       what);
    }

    bool eof() const { return pos_ >= text_.size(); }
    char peek() const { return text_[pos_]; }

    char next()
    {
        char c = text_[pos_++];
        if (c == '\n')
            line_++;
        return c;
    }

    void skipWs()
    {
        while (!eof()) {
            char c = peek();
            if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
                next();
            } else if (c == '#' ||
                       (c == '/' && pos_ + 1 < text_.size() &&
                        text_[pos_ + 1] == '/')) {
                while (!eof() && peek() != '\n')
                    next();
            } else {
                return;
            }
        }
    }

    void expect(char c, const char *where)
    {
        if (eof() || peek() != c)
            fail(std::string("expected '") + c + "' " + where);
        next();
    }

    bool literal(const char *word)
    {
        size_t n = 0;
        while (word[n])
            n++;
        if (text_.compare(pos_, n, word) != 0)
            return false;
        pos_ += n;
        return true;
    }

    JsonValue value()
    {
        skipWs();
        if (eof())
            fail("unexpected end of input");
        char c = peek();
        if (c == '{')
            return object();
        if (c == '[')
            return array();
        if (c == '"')
            return stringValue();
        if (c == '-' || (c >= '0' && c <= '9'))
            return numberValue();
        JsonValue v;
        if (literal("true")) {
            v.kind = JsonValue::Kind::Bool;
            v.text = "true";
            return v;
        }
        if (literal("false")) {
            v.kind = JsonValue::Kind::Bool;
            v.text = "false";
            return v;
        }
        if (literal("null")) {
            v.kind = JsonValue::Kind::Null;
            return v;
        }
        fail(std::string("unexpected character '") + c + "'");
    }

    JsonValue object()
    {
        JsonValue v;
        v.kind = JsonValue::Kind::Object;
        next(); // '{'
        skipWs();
        if (!eof() && peek() == '}') {
            next();
            return v;
        }
        for (;;) {
            skipWs();
            if (eof() || peek() != '"')
                fail("expected string key in object");
            std::string key = parseString();
            for (const auto &m : v.members)
                if (m.first == key)
                    fail("duplicate key \"" + key + "\"");
            skipWs();
            expect(':', "after object key");
            v.members.emplace_back(std::move(key), value());
            skipWs();
            if (!eof() && peek() == ',') {
                next();
                skipWs();
                if (!eof() && peek() == '}') { // trailing comma
                    next();
                    return v;
                }
                continue;
            }
            expect('}', "to close object");
            return v;
        }
    }

    JsonValue array()
    {
        JsonValue v;
        v.kind = JsonValue::Kind::Array;
        next(); // '['
        skipWs();
        if (!eof() && peek() == ']') {
            next();
            return v;
        }
        for (;;) {
            v.items.push_back(value());
            skipWs();
            if (!eof() && peek() == ',') {
                next();
                skipWs();
                if (!eof() && peek() == ']') { // trailing comma
                    next();
                    return v;
                }
                continue;
            }
            expect(']', "to close array");
            return v;
        }
    }

    JsonValue stringValue()
    {
        JsonValue v;
        v.kind = JsonValue::Kind::String;
        v.text = parseString();
        return v;
    }

    std::string parseString()
    {
        next(); // opening '"'
        std::string out;
        for (;;) {
            if (eof())
                fail("unterminated string");
            char c = next();
            if (c == '"')
                return out;
            if (c == '\n')
                fail("raw newline in string");
            if (c != '\\') {
                out += c;
                continue;
            }
            if (eof())
                fail("unterminated escape");
            char e = next();
            switch (e) {
            case '"': out += '"'; break;
            case '\\': out += '\\'; break;
            case '/': out += '/'; break;
            case 'b': out += '\b'; break;
            case 'f': out += '\f'; break;
            case 'n': out += '\n'; break;
            case 'r': out += '\r'; break;
            case 't': out += '\t'; break;
            case 'u': {
                // Manifests are knob names and scene ids: basic
                // multilingual plane escapes decode to UTF-8, which is
                // all the farm ever needs.
                unsigned code = 0;
                for (int i = 0; i < 4; i++) {
                    if (eof())
                        fail("truncated \\u escape");
                    char h = next();
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= unsigned(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= unsigned(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= unsigned(h - 'A' + 10);
                    else
                        fail("bad hex digit in \\u escape");
                }
                if (code < 0x80) {
                    out += char(code);
                } else if (code < 0x800) {
                    out += char(0xC0 | (code >> 6));
                    out += char(0x80 | (code & 0x3F));
                } else {
                    out += char(0xE0 | (code >> 12));
                    out += char(0x80 | ((code >> 6) & 0x3F));
                    out += char(0x80 | (code & 0x3F));
                }
                break;
            }
            default:
                fail(std::string("bad escape '\\") + e + "'");
            }
        }
    }

    JsonValue numberValue()
    {
        size_t start = pos_;
        if (peek() == '-')
            next();
        auto digits = [&]() {
            bool any = false;
            while (!eof() && std::isdigit((unsigned char)peek())) {
                next();
                any = true;
            }
            return any;
        };
        if (!digits())
            fail("malformed number");
        if (!eof() && peek() == '.') {
            next();
            if (!digits())
                fail("malformed number (no digits after '.')");
        }
        if (!eof() && (peek() == 'e' || peek() == 'E')) {
            next();
            if (!eof() && (peek() == '+' || peek() == '-'))
                next();
            if (!digits())
                fail("malformed number (empty exponent)");
        }
        JsonValue v;
        v.kind = JsonValue::Kind::Number;
        v.text = text_.substr(start, pos_ - start);
        return v;
    }

    const std::string &text_;
    const std::string &origin_;
    size_t pos_ = 0;
    int line_ = 1;
};

} // anonymous namespace

const JsonValue *
JsonValue::find(const std::string &key) const
{
    for (const auto &m : members)
        if (m.first == key)
            return &m.second;
    return nullptr;
}

JsonValue
JsonValue::parse(const std::string &text, const std::string &origin)
{
    return Parser(text, origin).document();
}

} // namespace trt
