/**
 * @file
 * The farm's worker protocol: length-prefixed framed messages over
 * anonymous pipes (DESIGN.md §13).
 *
 * Every frame is a 16-byte header — magic 'TRTF', a message type, and
 * the payload length — followed by the payload bytes. The scheduler
 * writes Job frames down a worker's job pipe; the worker answers with
 * Heartbeat frames while simulating and exactly one Result or Error
 * frame per job. A worker that dies mid-job simply truncates the
 * stream: the scheduler sees EOF (or a frame that never completes) and
 * reschedules the job. Framing means a half-written frame from a
 * SIGKILLed worker can never be mistaken for a short-but-valid one.
 *
 * Payloads:
 *   Job:       JobWire POD header + JobSpec::serialize() text.
 *   Result:    ResultWire POD header + RunStatsIo::save() bytes.
 *   Error:     u64 job index + UTF-8 message text.
 *   Heartbeat: u64 job index the worker is currently simulating.
 *   Shutdown:  empty (scheduler → worker; the worker exits cleanly).
 *
 * All PODs are native-endian: both ends of a pipe are always the same
 * binary on the same host (workers are forks of the scheduler).
 */

#ifndef TRT_FARM_PROTOCOL_HH
#define TRT_FARM_PROTOCOL_HH

#include <cstdint>
#include <string>

#include "harness/job.hh"

namespace trt
{

enum class FarmMsg : uint32_t
{
    Job = 1,
    Result = 2,
    Error = 3,
    Heartbeat = 4,
    Shutdown = 5,
};

constexpr uint32_t kFarmMagic = 0x54525446; // "TRTF"

/** POD head of a Job payload; the JobSpec text follows. */
struct JobWire
{
    uint64_t index;   //!< Scheduler's job index (echoed in replies).
    uint8_t resume;   //!< Resume from this fingerprint's snapshot.
    uint8_t pad[7] = {};
};

/** POD head of a Result payload; RunStatsIo bytes follow. */
struct ResultWire
{
    uint64_t index;
    uint64_t fingerprint; //!< Run-cache key the worker used.
    uint64_t wallMs;
    uint8_t cacheHit;
    uint8_t pad[7] = {};
};

/**
 * Write one frame (header + payload) to @p fd, retrying short writes
 * and EINTR. Returns false on error (e.g. EPIPE from a dead peer).
 */
bool writeFrame(int fd, FarmMsg type, const std::string &payload);

/**
 * Incremental frame decoder. pump() appends whatever bytes @p fd has
 * ready; next() extracts complete frames. Usable on both blocking
 * (worker) and non-blocking (scheduler) descriptors.
 */
class FrameReader
{
  public:
    /** Read once from @p fd into the buffer.
     *  @return bytes appended (> 0); 0 when nothing is ready right now
     *          (EAGAIN on a non-blocking fd, or EINTR); -1 on EOF or a
     *          read error — the peer is gone. */
    int pump(int fd);

    /** Extract the next complete frame into @p type / @p payload.
     *  Throws EnvError on a corrupt header (bad magic). */
    bool next(FarmMsg &type, std::string &payload);

  private:
    std::string buf_;
};

// ---- payload encode/decode -------------------------------------------

std::string encodeJob(uint64_t index, const JobSpec &spec, bool resume);
/** Throws EnvError on a malformed payload. */
void decodeJob(const std::string &payload, uint64_t &index,
               JobSpec &spec, bool &resume);

std::string encodeResult(uint64_t index, const JobOutcome &out);
/** Returns false on truncated/corrupt RunStats bytes. */
bool decodeResult(const std::string &payload, uint64_t &index,
                  JobOutcome &out);

std::string encodeError(uint64_t index, const std::string &message);
void decodeError(const std::string &payload, uint64_t &index,
                 std::string &message);

std::string encodeHeartbeat(uint64_t index);
bool decodeHeartbeat(const std::string &payload, uint64_t &index);

} // namespace trt

#endif // TRT_FARM_PROTOCOL_HH
