#include "farm/protocol.hh"

#include <algorithm>
#include <cerrno>
#include <cstdint>
#include <cstring>
#include <sstream>

#include <unistd.h>

#include "gpu/run_stats_io.hh"
#include "util/env.hh"

namespace trt
{

namespace
{

struct FrameHeader
{
    uint32_t magic;
    uint32_t type;
    uint64_t length;
};
static_assert(sizeof(FrameHeader) == 16);

/** Payloads are RunStats blobs at most (a few MB for a framebuffer);
 *  anything larger is a corrupt length from a torn stream. */
constexpr uint64_t kMaxPayload = 1ull << 30;

bool
writeAll(int fd, const char *data, size_t len)
{
    while (len > 0) {
        ssize_t n = ::write(fd, data, len);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        data += n;
        len -= size_t(n);
    }
    return true;
}

} // anonymous namespace

bool
writeFrame(int fd, FarmMsg type, const std::string &payload)
{
    FrameHeader h{kFarmMagic, uint32_t(type), payload.size()};
    char buf[sizeof(h)];
    std::memcpy(buf, &h, sizeof(h));
    if (!writeAll(fd, buf, sizeof(h)))
        return false;
    return writeAll(fd, payload.data(), payload.size());
}

int
FrameReader::pump(int fd)
{
    char chunk[65536];
    ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n > 0) {
        buf_.append(chunk, size_t(n));
        return int(std::min<ssize_t>(n, INT32_MAX));
    }
    if (n == 0)
        return -1; // EOF: peer closed (or died).
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK)
        return 0;
    return -1;
}

bool
FrameReader::next(FarmMsg &type, std::string &payload)
{
    if (buf_.size() < sizeof(FrameHeader))
        return false;
    FrameHeader h;
    std::memcpy(&h, buf_.data(), sizeof(h));
    if (h.magic != kFarmMagic || h.length > kMaxPayload)
        throw EnvError("farm protocol: corrupt frame header");
    if (buf_.size() < sizeof(h) + h.length)
        return false;
    type = FarmMsg(h.type);
    payload.assign(buf_, sizeof(h), h.length);
    buf_.erase(0, sizeof(h) + h.length);
    return true;
}

// ---- payload encode/decode -------------------------------------------

std::string
encodeJob(uint64_t index, const JobSpec &spec, bool resume)
{
    JobWire w{};
    w.index = index;
    w.resume = resume ? 1 : 0;
    std::string out(reinterpret_cast<const char *>(&w), sizeof(w));
    out += spec.serialize();
    return out;
}

void
decodeJob(const std::string &payload, uint64_t &index, JobSpec &spec,
          bool &resume)
{
    if (payload.size() < sizeof(JobWire))
        throw EnvError("farm protocol: truncated Job payload");
    JobWire w;
    std::memcpy(&w, payload.data(), sizeof(w));
    index = w.index;
    resume = w.resume != 0;
    spec = JobSpec::deserialize(payload.substr(sizeof(w)), "farm job");
}

std::string
encodeResult(uint64_t index, const JobOutcome &out)
{
    ResultWire w{};
    w.index = index;
    w.fingerprint = out.fingerprint;
    w.wallMs = out.wallMs;
    w.cacheHit = out.cacheHit ? 1 : 0;
    std::ostringstream ss(std::ios::binary);
    RunStatsIo::save(ss, out.stats);
    std::string payload(reinterpret_cast<const char *>(&w), sizeof(w));
    payload += ss.str();
    return payload;
}

bool
decodeResult(const std::string &payload, uint64_t &index, JobOutcome &out)
{
    if (payload.size() < sizeof(ResultWire))
        return false;
    ResultWire w;
    std::memcpy(&w, payload.data(), sizeof(w));
    index = w.index;
    out.fingerprint = w.fingerprint;
    out.wallMs = w.wallMs;
    out.cacheHit = w.cacheHit != 0;
    std::istringstream ss(payload.substr(sizeof(w)), std::ios::binary);
    return RunStatsIo::load(ss, out.stats);
}

std::string
encodeError(uint64_t index, const std::string &message)
{
    std::string payload(reinterpret_cast<const char *>(&index),
                        sizeof(index));
    payload += message;
    return payload;
}

void
decodeError(const std::string &payload, uint64_t &index,
            std::string &message)
{
    if (payload.size() < sizeof(index))
        throw EnvError("farm protocol: truncated Error payload");
    std::memcpy(&index, payload.data(), sizeof(index));
    message = payload.substr(sizeof(index));
}

std::string
encodeHeartbeat(uint64_t index)
{
    return std::string(reinterpret_cast<const char *>(&index),
                       sizeof(index));
}

bool
decodeHeartbeat(const std::string &payload, uint64_t &index)
{
    if (payload.size() < sizeof(index))
        return false;
    std::memcpy(&index, payload.data(), sizeof(index));
    return true;
}

} // namespace trt
