#include "farm/worker.hh"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <exception>
#include <mutex>
#include <thread>

#include <fcntl.h>
#include <unistd.h>

#include "farm/protocol.hh"
#include "snapshot/snapshot.hh"

namespace trt
{

namespace
{

/** Try to win the pool-wide crash lottery: the sentinel is created
 *  O_EXCL, so exactly one worker (first come) crashes per sweep. */
bool
claimCrashSentinel(const std::string &path)
{
    if (path.empty())
        return false;
    int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_EXCL, 0644);
    if (fd < 0)
        return false;
    ::close(fd);
    return true;
}

/** Periodic heartbeats on a background thread; all frames to the
 *  result fd (heartbeats here, Result/Error from the main thread) go
 *  through one mutex so they never interleave mid-frame. */
class Heartbeat
{
  public:
    Heartbeat(int fd, std::mutex &writeMtx, uint64_t jobIndex,
              uint32_t periodMs)
        : fd_(fd), write_mtx_(writeMtx), index_(jobIndex),
          period_ms_(periodMs)
    {
        thread_ = std::thread([this] { run(); });
    }

    ~Heartbeat()
    {
        {
            std::lock_guard<std::mutex> lk(mtx_);
            stop_ = true;
        }
        cv_.notify_all();
        thread_.join();
    }

  private:
    void run()
    {
        std::unique_lock<std::mutex> lk(mtx_);
        while (!stop_) {
            if (cv_.wait_for(lk, std::chrono::milliseconds(period_ms_),
                             [this] { return stop_; }))
                return;
            std::lock_guard<std::mutex> wlk(write_mtx_);
            writeFrame(fd_, FarmMsg::Heartbeat, encodeHeartbeat(index_));
        }
    }

    int fd_;
    std::mutex &write_mtx_;
    uint64_t index_;
    uint32_t period_ms_;
    std::thread thread_;
    std::mutex mtx_;
    std::condition_variable cv_;
    bool stop_ = false;
};

} // anonymous namespace

int
workerMain(int jobFd, int resultFd, const WorkerOptions &opt)
{
    // A scheduler that died leaves us writing into a closed pipe;
    // surface that as a write error, not a fatal SIGPIPE.
    ::signal(SIGPIPE, SIG_IGN);

    std::mutex write_mtx;
    FrameReader reader;
    FarmMsg type;
    std::string payload;
    for (;;) {
        while (!reader.next(type, payload)) {
            if (reader.pump(jobFd) < 0)
                return 0; // Scheduler closed the job pipe: done.
        }
        if (type == FarmMsg::Shutdown)
            return 0;
        if (type != FarmMsg::Job)
            continue; // Ignore anything unexpected.

        uint64_t index = 0;
        JobSpec spec;
        bool resume = false;
        try {
            decodeJob(payload, index, spec, resume);
        } catch (const std::exception &e) {
            std::lock_guard<std::mutex> lk(write_mtx);
            if (!writeFrame(resultFd, FarmMsg::Error,
                            encodeError(index, e.what())))
                return 1;
            continue;
        }

        JobRunnerOptions ropt;
        ropt.simThreads = opt.simThreads;
        ropt.resume = resume;
        bool injected = false;
        // The crash lottery is drawn only for fresh attempts: a resumed
        // job is the recovery of a previous crash and must complete.
        if (!resume && claimCrashSentinel(opt.crashSentinel)) {
            ropt.haltAtCycle = opt.crashAtCycle;
            injected = true;
        }

        try {
            Heartbeat beat(resultFd, write_mtx, index, opt.heartbeatMs);
            JobOutcome out = runJob(spec, ropt);
            std::lock_guard<std::mutex> lk(write_mtx);
            if (!writeFrame(resultFd, FarmMsg::Result,
                            encodeResult(index, out)))
                return 1;
        } catch (const SimulationHalted &) {
            // Injected crash: the snapshot is on disk; die the way a
            // real crash would so the scheduler exercises its actual
            // recovery path (EOF on the pipe, waitpid, retry+resume).
            (void)injected;
            ::raise(SIGKILL);
            return 137; // not reached
        } catch (const std::exception &e) {
            std::lock_guard<std::mutex> lk(write_mtx);
            if (!writeFrame(resultFd, FarmMsg::Error,
                            encodeError(index, e.what())))
                return 1;
        }
    }
}

} // namespace trt
