/**
 * @file
 * Minimal JSON reader for sweep manifests (DESIGN.md §13).
 *
 * Supports the full JSON value grammar plus two manifest conveniences:
 * `//` and `#` line comments, and trailing commas in arrays/objects.
 * Object member order is preserved (manifest expansion order is part
 * of the farm's output contract), and scalar tokens keep their source
 * text so integers round-trip through the same strict text parsers
 * (util/env.hh) the TRT_* knobs use — no double-rounding of a u64.
 *
 * Errors throw EnvError naming the origin (file) and line.
 */

#ifndef TRT_FARM_JSON_HH
#define TRT_FARM_JSON_HH

#include <string>
#include <utility>
#include <vector>

namespace trt
{

struct JsonValue
{
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object
    };

    Kind kind = Kind::Null;
    /** Scalar payload: decoded string, raw number token, or
     *  "true"/"false" — ready for the env.hh text parsers. */
    std::string text;
    std::vector<JsonValue> items; //!< Array elements.
    /** Object members, in source order. */
    std::vector<std::pair<std::string, JsonValue>> members;

    bool isNull() const { return kind == Kind::Null; }
    bool isBool() const { return kind == Kind::Bool; }
    bool isNumber() const { return kind == Kind::Number; }
    bool isString() const { return kind == Kind::String; }
    bool isArray() const { return kind == Kind::Array; }
    bool isObject() const { return kind == Kind::Object; }

    /** True for values the manifest can feed to a knob parser. */
    bool isScalar() const
    {
        return isBool() || isNumber() || isString();
    }

    /** Object member lookup; nullptr when absent (or not an object). */
    const JsonValue *find(const std::string &key) const;

    /**
     * Parse @p text as one JSON document (trailing garbage is an
     * error). @p origin names the source in EnvError messages.
     */
    static JsonValue parse(const std::string &text,
                           const std::string &origin = "json");
};

} // namespace trt

#endif // TRT_FARM_JSON_HH
