/**
 * @file
 * Sweep manifests: a declarative cross-product of jobs (DESIGN.md §13).
 *
 * A manifest is a JSON document:
 *
 *     {
 *       "name": "ci-smoke",                  // output file stem
 *       "defaults": {"res": 128, "scale": 0.15},
 *       "scenes":  ["CRNVL", "BUNNY"],       // axis 1
 *       "configs": ["fifo", "vtq"],          // axis 2
 *       "grid":    {"bvh_width": [4, 8]},    // extra axes (knob grids)
 *       "jobs":    [{"scene": "FRST", "config": "predict"}]
 *     }
 *
 * Expansion order is deterministic: scenes (outer) × configs × grid
 * axes in declaration order, then explicit "jobs" entries, each merged
 * over "defaults". Knob keys are the JobSpec serialization keys
 * (harness/job.hh) and are validated with the same strict parsers as
 * the TRT_* environment knobs — an unknown key or malformed value is a
 * hard EnvError, never silently ignored. Jobs whose fingerprints
 * collide (identical simulations) are deduplicated keep-first.
 */

#ifndef TRT_FARM_MANIFEST_HH
#define TRT_FARM_MANIFEST_HH

#include <cstddef>
#include <string>
#include <vector>

#include "harness/job.hh"

namespace trt
{

struct Manifest
{
    /** Output file stem (results CSV/JSONL); "sweep" when omitted. */
    std::string name = "sweep";
    /** Expanded, fingerprint-deduplicated jobs in expansion order. */
    std::vector<JobSpec> jobs;
    /** Jobs dropped by the keep-first fingerprint dedup. */
    size_t duplicates = 0;

    /** Parse + expand @p text. @p origin names the source in errors. */
    static Manifest parse(const std::string &text,
                          const std::string &origin = "manifest");

    /** Read @p path and parse it; EnvError on I/O failure. */
    static Manifest load(const std::string &path);
};

} // namespace trt

#endif // TRT_FARM_MANIFEST_HH
