/**
 * @file
 * The simulated memory hierarchy: per-SM L1 caches, a shared L2 (with an
 * optional reserved partition for treelet-queue ray data, paper section
 * 4.2), and DRAM with a latency + bandwidth model. Requests are tagged
 * with a class so the figures can report BVH-only miss rates (Fig. 1a,
 * Fig. 11) and price ray-virtualization traffic separately (Fig. 16/17).
 *
 * Timing style: latencies are resolved at issue ("ready cycle" returned
 * to the requester) with an MSHR-like pending-line table so concurrent
 * misses to the same line merge instead of each paying DRAM latency —
 * and so a ray touching a line whose fill is still in flight waits for
 * the fill, not an L1 hit.
 *
 * Two-phase operation: callers inside an SM tick go through a per-SM
 * SmPort. Outside an issue phase the port resolves synchronously
 * (identical to the plain read()/write()/prefetchL1() entry points).
 * Between beginIssuePhase() and commitIssuePhase() the port only
 * performs the SM-local half of each request (L1 tag lookup/update) and
 * records it; commitIssuePhase() then replays the shared half (stats,
 * L2, DRAM queueing, MSHR tables) of every recorded request in
 * (sm, seq) order — exactly the order a serial SM loop would have
 * produced — and writes each result back through the requester's
 * destination pointer. This lets the Gpu run SM ticks on worker threads
 * with bit-identical results at any thread count.
 */

#ifndef TRT_MEMSYS_MEMSYS_HH
#define TRT_MEMSYS_MEMSYS_HH

#include <algorithm>
#include <array>
#include <cassert>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "memsys/cache.hh"
#include "stats/stats.hh"

namespace trt
{

/** Request classes for accounting. */
enum class MemClass : uint8_t
{
    BvhNode = 0, //!< Internal BVH node fetch from the RT unit.
    Triangle,    //!< Leaf triangle block fetch from the RT unit.
    RayData,     //!< Treelet-queue ray data (L2 reserved region).
    CtaState,    //!< Ray virtualization CTA save/restore traffic.
    Shader,      //!< Generic shader-core memory traffic.
    QueueTable,  //!< Treelet queue table held in the L1.
    NumClasses
};

/** Printable name of @p c. */
const char *memClassName(MemClass c);

/** Memory hierarchy parameters (defaults = paper Table 1). */
struct MemConfig
{
    /** 128B lines as in Accel-Sim's RTX 3080 model (two BVH nodes per
     *  line; siblings are adjacent, giving mild spatial locality). */
    uint32_t lineBytes = 128;
    uint32_t numL1s = 16;           //!< One per SM.
    uint64_t l1Bytes = 16 * 1024;   //!< 16KB fully assoc LRU.
    uint32_t l1Ways = 0;            //!< 0 = fully associative.
    uint32_t l1HitLatency = 39;
    uint64_t l2Bytes = 128 * 1024;  //!< 128KB 16-way LRU.
    uint32_t l2Ways = 16;
    uint32_t l2HitLatency = 187;    //!< Round-trip from the core.
    /** L2 bytes reserved for treelet-queue ray data (0 in baseline). */
    uint64_t l2ReservedBytes = 0;
    uint32_t dramLatency = 300;     //!< Added beyond the L2 round trip.
    /** DRAM service bandwidth in bytes per core cycle. */
    double dramBytesPerCycle = 128.0;
};

/** Per-class, per-level counters. */
struct MemClassStats
{
    uint64_t l1Accesses = 0;
    uint64_t l1Misses = 0;
    uint64_t l2Accesses = 0;
    uint64_t l2Misses = 0;
    uint64_t dramAccesses = 0;
    uint64_t dramReadBytes = 0;
    uint64_t dramWriteBytes = 0;
    uint64_t writes = 0;
};

/** Ticket identifying one SmPort request within the current phase. */
using MemTicket = uint32_t;

/** The full hierarchy. One instance per simulated GPU. */
class MemorySystem
{
  public:
    explicit MemorySystem(const MemConfig &cfg);

    const MemConfig &config() const { return cfg_; }

    /** Result of a read. */
    struct Access
    {
        uint64_t readyCycle = 0;
        bool l1Hit = false;
        bool l2Hit = false;
    };

    /**
     * Per-SM request frontend (two-phase interface). Constructed by
     * MemorySystem, one per L1; obtain via port(sm). During an issue
     * phase only this SM's L1 tags are touched, so distinct ports may
     * be driven from distinct threads concurrently.
     */
    class SmPort
    {
      public:
        SmPort(MemorySystem &owner, uint32_t sm)
            : owner_(&owner), sm_(sm)
        {}

        /**
         * Read @p bytes at @p addr (see MemorySystem::read). Returns a
         * ticket; the Access is available via result() once resolved —
         * immediately outside an issue phase, after commitIssuePhase()
         * inside one. If @p ready_dst is non-null, the ready cycle is
         * additionally stored through it at resolution time; the
         * pointee must stay at that address until the phase commits.
         */
        MemTicket read(uint64_t now, uint64_t addr, uint32_t bytes,
                       MemClass cls, bool bypass_l1 = false,
                       uint64_t *ready_dst = nullptr);

        /** Write-through store (see MemorySystem::write); no result. */
        void write(uint64_t now, uint64_t addr, uint32_t bytes,
                   MemClass cls);

        /** Prefetch into this SM's L1 (see MemorySystem::prefetchL1).
         *  The resulting Access carries only readyCycle. */
        MemTicket prefetchL1(uint64_t now, uint64_t addr, uint32_t bytes,
                             MemClass cls);

        /** True once @p t has a result (always true for tickets issued
         *  outside an issue phase). */
        bool resolved(MemTicket t) const { return t < results_.size(); }

        /** Result of @p t; valid until the next beginIssuePhase(). */
        const Access &result(MemTicket t) const { return results_[t]; }

        /** L1 probe; SM-local, callable in any phase. */
        bool l1Probe(uint64_t addr) const
        { return owner_->l1Probe(sm_, addr); }

      private:
        friend class MemorySystem;

        struct Request
        {
            enum Kind : uint8_t { Read, Write, Prefetch } kind;
            bool bypassL1 = false;
            MemClass cls = MemClass::Shader;
            uint32_t bytes = 0;
            uint64_t now = 0;
            uint64_t addr = 0;
            uint32_t flagOff = 0; //!< Into flags_ (per-line tag state).
            uint64_t *readyDst = nullptr;
        };

        MemorySystem *owner_;
        uint32_t sm_;
        std::vector<Request> requests_;
        std::vector<uint8_t> flags_;
        std::vector<Access> results_;
    };

    /** The issue frontend of SM @p sm. */
    SmPort &port(uint32_t sm) { return ports_[sm]; }

    /**
     * Enter the deferred (issue) phase: ports record requests instead
     * of resolving them. Clears all tickets of the previous phase.
     */
    void beginIssuePhase();

    /**
     * Leave the issue phase: resolve every recorded request against the
     * shared L2/DRAM state in (sm, seq) order and write results back.
     */
    void commitIssuePhase();

    /** True between beginIssuePhase() and commitIssuePhase(). */
    bool issuePhase() const { return issuePhase_; }

    /**
     * Read @p bytes at @p addr from SM @p sm at time @p now. Multi-line
     * requests issue all lines back to back; the returned ready cycle is
     * when the last line arrives.
     *
     * @param bypass_l1 Route around the L1 (ray-data loads do this so
     *        they cannot evict treelet data, paper section 4.2).
     */
    Access read(uint64_t now, uint32_t sm, uint64_t addr, uint32_t bytes,
                MemClass cls, bool bypass_l1 = false);

    /**
     * Write @p bytes (write-through, no-allocate). Consumes DRAM
     * bandwidth and counts traffic; the caller does not wait for it.
     */
    void write(uint64_t now, uint32_t sm, uint64_t addr, uint32_t bytes,
               MemClass cls);

    /**
     * Prefetch [addr, addr+bytes) into SM @p sm's L1 (treelet loads and
     * the treelet prefetcher use this). Lines are installed immediately
     * and marked in flight; a demand access before the fill completes
     * waits for it. @return cycle the last line arrives.
     */
    uint64_t prefetchL1(uint64_t now, uint32_t sm, uint64_t addr,
                        uint32_t bytes, MemClass cls);

    /** True when the line holding @p addr resides in SM @p sm's L1. */
    bool l1Probe(uint32_t sm, uint64_t addr) const;

    const MemClassStats &classStats(MemClass c) const
    { return stats_[size_t(c)]; }

    /** Sum over all classes. */
    MemClassStats totalStats() const;

    /** Whole-run BVH (node + triangle) L1 miss ratio — Fig. 1a. */
    double bvhL1MissRate() const;

    /**
     * Windowed BVH L1 miss series for Fig. 11. Enabled by the GPU model
     * before simulation starts.
     */
    void enableBvhSeries(uint64_t window_cycles);
    const WindowedSeries *bvhSeries() const { return bvhSeries_.get(); }

    /**
     * Sampled-simulation phase hook: while false, BVH accesses stop
     * feeding the Fig. 11 windowed series (the counters themselves keep
     * counting — the sampler extrapolates those from interval deltas,
     * but the series has no per-window extrapolation, so warm-up and
     * drain traffic must not dilute its measured windows). Full runs
     * never touch this; it defaults to recording. Not serialized: the
     * sampled driver re-derives it from the restored phase.
     */
    void setBvhSeriesRecording(bool on) { bvhSeriesRecording_ = on; }

    uint32_t lineBytes() const { return cfg_.lineBytes; }

    /**
     * Snapshot hooks (DESIGN.md §7). Must be called outside an issue
     * phase — SmPort tickets are per-phase transients and are not
     * captured. Covers every cache tag store, the MSHR pending-fill
     * tables, the DRAM bandwidth clock, per-class counters and the
     * Fig. 11 windowed series.
     */
    void saveState(Serializer &s) const;
    void loadState(Deserializer &d);

  private:
    /**
     * MSHR-style pending-fill table: open-addressed, linear-probed,
     * power-of-two sized. Keys are simulated line addresses (optionally
     * tagged with an SM id in the high bits) and are never 0, so 0 is
     * the empty-slot sentinel. This sits on the hottest path of every
     * miss, where the allocation and pointer chasing of a node-based
     * hash map dominated the simulator profile.
     */
    class PendingLineTable
    {
      public:
        PendingLineTable() { slots_.resize(kMinCapacity); }

        /** Insert or overwrite @p key -> @p ready. */
        void
        put(uint64_t key, uint64_t ready)
        {
            assert(key != 0);
            if ((used_ + 1) * 4 > slots_.size() * 3)
                grow(slots_.size() * 2);
            size_t i = hashOf(key) & (slots_.size() - 1);
            while (slots_[i].key != 0 && slots_[i].key != key)
                i = (i + 1) & (slots_.size() - 1);
            if (slots_[i].key == 0) {
                slots_[i].key = key;
                used_++;
            }
            slots_[i].ready = ready;
        }

        /** Stored ready cycle of @p key, or 0 when absent. */
        uint64_t
        get(uint64_t key) const
        {
            size_t i = hashOf(key) & (slots_.size() - 1);
            while (slots_[i].key != 0) {
                if (slots_[i].key == key)
                    return slots_[i].ready;
                i = (i + 1) & (slots_.size() - 1);
            }
            return 0;
        }

        /** Snapshot hooks: the table is captured as key-sorted
         *  (key, ready) pairs and rebuilt by re-insertion — probe
         *  layout may differ, the key->ready mapping (the only
         *  observable state) is identical. */
        void
        saveState(Serializer &s) const
        {
            std::vector<Slot> live;
            live.reserve(used_);
            for (const Slot &sl : slots_)
                if (sl.key != 0)
                    live.push_back(sl);
            std::sort(live.begin(), live.end(),
                      [](const Slot &a, const Slot &b) {
                          return a.key < b.key;
                      });
            s.beginChunk("PLTB");
            s.u64(live.size());
            for (const Slot &sl : live) {
                s.u64(sl.key);
                s.u64(sl.ready);
            }
            s.endChunk();
        }

        void
        loadState(Deserializer &d)
        {
            d.beginChunk("PLTB");
            uint64_t n = d.u64();
            slots_.assign(kMinCapacity, Slot{});
            used_ = 0;
            for (uint64_t i = 0; i < n; i++) {
                uint64_t key = d.u64();
                uint64_t ready = d.u64();
                if (key == 0)
                    throw SnapshotError("snapshot: null MSHR key");
                put(key, ready);
            }
            d.endChunk();
        }

        /** Drop every entry whose ready cycle is <= @p now (rebuild:
         *  linear probing cannot erase in place). */
        void
        clean(uint64_t now)
        {
            size_t live = 0;
            for (const Slot &s : slots_)
                live += s.key != 0 && s.ready > now;
            size_t cap = kMinCapacity;
            while (cap * 3 < live * 4 * 2)
                cap *= 2;
            std::vector<Slot> old = std::move(slots_);
            slots_.assign(cap, Slot{});
            used_ = 0;
            for (const Slot &s : old) {
                if (s.key != 0 && s.ready > now)
                    put(s.key, s.ready);
            }
        }

      private:
        struct Slot
        {
            uint64_t key = 0;
            uint64_t ready = 0;
        };

        static constexpr size_t kMinCapacity = 1024;

        static size_t
        hashOf(uint64_t key)
        {
            return size_t((key * 0x9E3779B97F4A7C15ull) >> 32);
        }

        void
        grow(size_t cap)
        {
            std::vector<Slot> old = std::move(slots_);
            slots_.assign(cap, Slot{});
            used_ = 0;
            for (const Slot &s : old)
                if (s.key != 0)
                    put(s.key, s.ready);
        }

        std::vector<Slot> slots_;
        size_t used_ = 0;
    };

    /** Per-line L1 tag state captured at issue time. */
    enum LineFlag : uint8_t
    {
        kLineMiss = 0,     //!< L1 miss (tag updated / installed).
        kLineHit = 1,      //!< L1 hit.
        kLineResident = 2, //!< Prefetch target already resident.
    };

    /** Issue half of read(): per-SM L1 tag lookups, one flag per line
     *  appended to @p flags. No-op (appends nothing) for bypass_l1. */
    void issueReadTags(uint32_t sm, uint64_t addr, uint32_t bytes,
                       bool bypass_l1, std::vector<uint8_t> &flags);
    /** Issue half of prefetchL1(): probe/install, one flag per line. */
    void issuePrefetchTags(uint32_t sm, uint64_t addr, uint32_t bytes,
                           std::vector<uint8_t> &flags);
    /** Commit half of read(): everything downstream of the L1 tags. */
    Access commitRead(uint32_t sm, const SmPort::Request &r,
                      const std::vector<uint8_t> &flags);
    /** Commit half of prefetchL1(). */
    uint64_t commitPrefetch(uint32_t sm, const SmPort::Request &r,
                            const std::vector<uint8_t> &flags);

    /** Shared (post-L1-tag) half of one line read: counters, series,
     *  MSHR waits, L2 lookup and DRAM queueing. */
    uint64_t finishLine(uint64_t now, uint32_t sm, uint64_t line_addr,
                        MemClass cls, bool bypass_l1, bool l1_hit);

    /** DRAM queueing + service; returns completion cycle. */
    uint64_t dramService(uint64_t now, uint32_t bytes, MemClass cls,
                         bool is_write);

    void notePending(PendingLineTable &map, uint64_t key, uint64_t ready);
    uint64_t pendingReady(const PendingLineTable &map, uint64_t key,
                          uint64_t now) const;

    MemConfig cfg_;
    std::vector<Cache> l1s_;
    Cache l2_;
    std::unique_ptr<Cache> l2Reserved_;

    std::vector<SmPort> ports_;
    bool issuePhase_ = false;
    /** Scratch for the serial (immediate) path's per-line flags. */
    std::vector<uint8_t> scratchFlags_;

    /** In-flight fills keyed by (sm << 48) | line for L1, line for L2. */
    PendingLineTable pendingL1_;
    PendingLineTable pendingL2_;
    uint64_t pendingSweep_ = 0;

    uint64_t dramBusyUntil_ = 0;
    double dramCyclesPerByte_;

    std::array<MemClassStats, size_t(MemClass::NumClasses)> stats_{};
    std::unique_ptr<WindowedSeries> bvhSeries_;
    bool bvhSeriesRecording_ = true;
};

} // namespace trt

#endif // TRT_MEMSYS_MEMSYS_HH
