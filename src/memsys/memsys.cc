#include "memsys/memsys.hh"

#include <algorithm>
#include <cassert>

namespace trt
{

const char *
memClassName(MemClass c)
{
    switch (c) {
      case MemClass::BvhNode:
        return "bvh_node";
      case MemClass::Triangle:
        return "triangle";
      case MemClass::RayData:
        return "ray_data";
      case MemClass::CtaState:
        return "cta_state";
      case MemClass::Shader:
        return "shader";
      case MemClass::QueueTable:
        return "queue_table";
      default:
        return "unknown";
    }
}

MemorySystem::MemorySystem(const MemConfig &cfg)
    : cfg_(cfg),
      l2_(std::max<uint64_t>(cfg.lineBytes * cfg.l2Ways,
                             cfg.l2Bytes - cfg.l2ReservedBytes),
          cfg.l2Ways, cfg.lineBytes),
      dramCyclesPerByte_(1.0 / cfg.dramBytesPerCycle)
{
    l1s_.reserve(cfg.numL1s);
    ports_.reserve(cfg.numL1s);
    for (uint32_t i = 0; i < cfg.numL1s; i++) {
        l1s_.emplace_back(cfg.l1Bytes, cfg.l1Ways, cfg.lineBytes);
        ports_.emplace_back(*this, i);
        // Steady-state capacity so per-tick recording never allocates.
        ports_.back().requests_.reserve(256);
        ports_.back().flags_.reserve(512);
        ports_.back().results_.reserve(256);
    }
    scratchFlags_.reserve(64);
    if (cfg.l2ReservedBytes > 0) {
        // Reserved partition is fully associative: it holds a known
        // working set (ray data) and should not suffer conflict misses.
        l2Reserved_ = std::make_unique<Cache>(cfg.l2ReservedBytes, 0,
                                              cfg.lineBytes);
    }
}

uint64_t
MemorySystem::dramService(uint64_t now, uint32_t bytes, MemClass cls,
                          bool is_write)
{
    auto &st = stats_[size_t(cls)];
    st.dramAccesses++;
    if (is_write)
        st.dramWriteBytes += bytes;
    else
        st.dramReadBytes += bytes;

    uint64_t service =
        std::max<uint64_t>(1, uint64_t(double(bytes) * dramCyclesPerByte_));
    uint64_t start = std::max(now, dramBusyUntil_);
    dramBusyUntil_ = start + service;
    // Completion = queueing delay + array latency + service.
    return start + cfg_.dramLatency + service;
}

void
MemorySystem::notePending(PendingLineTable &map, uint64_t key,
                          uint64_t ready)
{
    map.put(key, ready);
    if (++pendingSweep_ >= 65536) {
        pendingSweep_ = 0;
        // Sweep threshold deliberately stays the just-inserted ready
        // cycle (not "now"): entries completing before this fill does
        // can no longer stall anyone issued after it.
        pendingL1_.clean(ready);
        pendingL2_.clean(ready);
    }
}

uint64_t
MemorySystem::pendingReady(const PendingLineTable &map, uint64_t key,
                           uint64_t now) const
{
    uint64_t ready = map.get(key);
    return ready > now ? ready : 0;
}

uint64_t
MemorySystem::finishLine(uint64_t now, uint32_t sm, uint64_t line_addr,
                         MemClass cls, bool bypass_l1, bool l1_hit)
{
    auto &st = stats_[size_t(cls)];
    bool bvh = cls == MemClass::BvhNode || cls == MemClass::Triangle;
    uint64_t l1_key = (uint64_t(sm) << 48) | (line_addr & 0xffffffffffffull);

    if (!bypass_l1) {
        st.l1Accesses++;
        if (l1_hit) {
            // If the line's fill is still in flight, wait for it.
            uint64_t pend = pendingReady(pendingL1_, l1_key, now);
            uint64_t ready = std::max(now + cfg_.l1HitLatency, pend);
            if (bvh && bvhSeries_ && bvhSeriesRecording_)
                bvhSeries_->record(now, 0, 1);
            return ready;
        }
        st.l1Misses++;
        if (bvh && bvhSeries_ && bvhSeriesRecording_)
            bvhSeries_->record(now, 1, 1);
    }

    // L2 lookup. Ray data goes to the reserved partition when present.
    Cache *l2 = &l2_;
    if (cls == MemClass::RayData && l2Reserved_)
        l2 = l2Reserved_.get();
    st.l2Accesses++;
    bool l2_hit = l2->access(line_addr);
    uint64_t ready;
    if (l2_hit) {
        uint64_t pend = pendingReady(pendingL2_, line_addr, now);
        ready = std::max(now + cfg_.l2HitLatency, pend);
    } else {
        st.l2Misses++;
        ready = dramService(now + cfg_.l2HitLatency, cfg_.lineBytes, cls,
                            false);
        notePending(pendingL2_, line_addr, ready);
    }
    if (!bypass_l1)
        notePending(pendingL1_, l1_key, ready);
    return ready;
}

void
MemorySystem::issueReadTags(uint32_t sm, uint64_t addr, uint32_t bytes,
                            bool bypass_l1, std::vector<uint8_t> &flags)
{
    if (bypass_l1)
        return;
    uint64_t first = l1s_[sm].lineAddr(addr);
    uint64_t last = l1s_[sm].lineAddr(addr + (bytes ? bytes - 1 : 0));
    for (uint64_t a = first; a <= last; a += cfg_.lineBytes)
        flags.push_back(l1s_[sm].access(a) ? kLineHit : kLineMiss);
}

MemorySystem::Access
MemorySystem::commitRead(uint32_t sm, const SmPort::Request &r,
                         const std::vector<uint8_t> &flags)
{
    Access acc;
    uint64_t first = l1s_[sm].lineAddr(r.addr);
    uint64_t last = l1s_[sm].lineAddr(r.addr + (r.bytes ? r.bytes - 1 : 0));

    // Multi-line requests issue back to back; completion is the max.
    uint64_t ready = r.now;
    uint32_t line = 0;
    for (uint64_t a = first; a <= last; a += cfg_.lineBytes, line++) {
        bool hit = !r.bypassL1 && flags[r.flagOff + line] == kLineHit;
        uint64_t rr = finishLine(r.now + line, sm, a, r.cls, r.bypassL1,
                                 hit);
        ready = std::max(ready, rr);
        if (line == 0) {
            // Report hit levels of the first line (diagnostics only).
            acc.l1Hit = rr <= r.now + cfg_.l1HitLatency;
            acc.l2Hit = rr <= r.now + cfg_.l2HitLatency;
        }
    }
    acc.readyCycle = ready;
    return acc;
}

MemorySystem::Access
MemorySystem::read(uint64_t now, uint32_t sm, uint64_t addr, uint32_t bytes,
                   MemClass cls, bool bypass_l1)
{
    assert(sm < l1s_.size());
    assert(!issuePhase_ && "use port(sm) during an issue phase");
    scratchFlags_.clear();
    issueReadTags(sm, addr, bytes, bypass_l1, scratchFlags_);
    SmPort::Request r;
    r.kind = SmPort::Request::Read;
    r.bypassL1 = bypass_l1;
    r.cls = cls;
    r.bytes = bytes;
    r.now = now;
    r.addr = addr;
    return commitRead(sm, r, scratchFlags_);
}

void
MemorySystem::write(uint64_t now, uint32_t sm, uint64_t addr, uint32_t bytes,
                    MemClass cls)
{
    (void)sm;
    (void)addr;
    auto &st = stats_[size_t(cls)];
    st.writes++;
    // Write-through, no-allocate: consume DRAM bandwidth only. The
    // requester does not wait (stores retire through a write queue).
    dramService(now, bytes, cls, true);
}

void
MemorySystem::issuePrefetchTags(uint32_t sm, uint64_t addr, uint32_t bytes,
                                std::vector<uint8_t> &flags)
{
    uint64_t first = l1s_[sm].lineAddr(addr);
    uint64_t last = l1s_[sm].lineAddr(addr + (bytes ? bytes - 1 : 0));
    for (uint64_t a = first; a <= last; a += cfg_.lineBytes) {
        if (l1s_[sm].probe(a)) {
            flags.push_back(kLineResident);
        } else {
            l1s_[sm].install(a);
            flags.push_back(kLineMiss);
        }
    }
}

uint64_t
MemorySystem::commitPrefetch(uint32_t sm, const SmPort::Request &r,
                             const std::vector<uint8_t> &flags)
{
    uint64_t first = l1s_[sm].lineAddr(r.addr);
    uint64_t last = l1s_[sm].lineAddr(r.addr + (r.bytes ? r.bytes - 1 : 0));

    uint64_t ready = r.now;
    uint32_t line = 0;
    for (uint64_t a = first; a <= last; a += cfg_.lineBytes, line++) {
        uint64_t l1_key = (uint64_t(sm) << 48) | (a & 0xffffffffffffull);
        if (flags[r.flagOff + line] == kLineResident) {
            // Already resident; maybe still in flight from earlier.
            ready = std::max(ready,
                             pendingReady(pendingL1_, l1_key, r.now));
            continue;
        }
        uint64_t rr = finishLine(r.now + line, sm, a, r.cls, false, false);
        notePending(pendingL1_, l1_key, rr);
        ready = std::max(ready, rr);
    }
    return ready;
}

uint64_t
MemorySystem::prefetchL1(uint64_t now, uint32_t sm, uint64_t addr,
                         uint32_t bytes, MemClass cls)
{
    assert(sm < l1s_.size());
    assert(!issuePhase_ && "use port(sm) during an issue phase");
    scratchFlags_.clear();
    issuePrefetchTags(sm, addr, bytes, scratchFlags_);
    SmPort::Request r;
    r.kind = SmPort::Request::Prefetch;
    r.cls = cls;
    r.bytes = bytes;
    r.now = now;
    r.addr = addr;
    return commitPrefetch(sm, r, scratchFlags_);
}

MemTicket
MemorySystem::SmPort::read(uint64_t now, uint64_t addr, uint32_t bytes,
                           MemClass cls, bool bypass_l1,
                           uint64_t *ready_dst)
{
    if (!owner_->issuePhase_) {
        Access a = owner_->read(now, sm_, addr, bytes, cls, bypass_l1);
        if (ready_dst)
            *ready_dst = a.readyCycle;
        results_.push_back(a);
        return MemTicket(results_.size() - 1);
    }
    Request r;
    r.kind = Request::Read;
    r.bypassL1 = bypass_l1;
    r.cls = cls;
    r.bytes = bytes;
    r.now = now;
    r.addr = addr;
    r.flagOff = uint32_t(flags_.size());
    r.readyDst = ready_dst;
    owner_->issueReadTags(sm_, addr, bytes, bypass_l1, flags_);
    requests_.push_back(r);
    return MemTicket(requests_.size() - 1);
}

void
MemorySystem::SmPort::write(uint64_t now, uint64_t addr, uint32_t bytes,
                            MemClass cls)
{
    if (!owner_->issuePhase_) {
        owner_->write(now, sm_, addr, bytes, cls);
        return;
    }
    Request r;
    r.kind = Request::Write;
    r.cls = cls;
    r.bytes = bytes;
    r.now = now;
    r.addr = addr;
    requests_.push_back(r);
}

MemTicket
MemorySystem::SmPort::prefetchL1(uint64_t now, uint64_t addr,
                                 uint32_t bytes, MemClass cls)
{
    if (!owner_->issuePhase_) {
        Access a;
        a.readyCycle = owner_->prefetchL1(now, sm_, addr, bytes, cls);
        results_.push_back(a);
        return MemTicket(results_.size() - 1);
    }
    Request r;
    r.kind = Request::Prefetch;
    r.cls = cls;
    r.bytes = bytes;
    r.now = now;
    r.addr = addr;
    r.flagOff = uint32_t(flags_.size());
    owner_->issuePrefetchTags(sm_, addr, bytes, flags_);
    requests_.push_back(r);
    return MemTicket(requests_.size() - 1);
}

void
MemorySystem::beginIssuePhase()
{
    assert(!issuePhase_);
    issuePhase_ = true;
    for (auto &p : ports_) {
        p.requests_.clear();
        p.flags_.clear();
        p.results_.clear();
    }
}

void
MemorySystem::commitIssuePhase()
{
    assert(issuePhase_);
    issuePhase_ = false;
    // Drain in (sm, seq) order: the exact global order the old serial
    // SM loop produced, so every MSHR merge, L2 eviction and DRAM
    // queueing decision is reproduced bit for bit.
    for (auto &p : ports_) {
        p.results_.reserve(p.requests_.size());
        for (const SmPort::Request &r : p.requests_) {
            Access a;
            switch (r.kind) {
              case SmPort::Request::Read:
                a = commitRead(p.sm_, r, p.flags_);
                break;
              case SmPort::Request::Write:
                write(r.now, p.sm_, r.addr, r.bytes, r.cls);
                break;
              case SmPort::Request::Prefetch:
                a.readyCycle = commitPrefetch(p.sm_, r, p.flags_);
                break;
            }
            if (r.readyDst)
                *r.readyDst = a.readyCycle;
            p.results_.push_back(a);
        }
        p.requests_.clear();
    }
}

bool
MemorySystem::l1Probe(uint32_t sm, uint64_t addr) const
{
    return l1s_[sm].probe(addr);
}

MemClassStats
MemorySystem::totalStats() const
{
    MemClassStats t;
    for (const auto &s : stats_) {
        t.l1Accesses += s.l1Accesses;
        t.l1Misses += s.l1Misses;
        t.l2Accesses += s.l2Accesses;
        t.l2Misses += s.l2Misses;
        t.dramAccesses += s.dramAccesses;
        t.dramReadBytes += s.dramReadBytes;
        t.dramWriteBytes += s.dramWriteBytes;
        t.writes += s.writes;
    }
    return t;
}

double
MemorySystem::bvhL1MissRate() const
{
    const auto &n = stats_[size_t(MemClass::BvhNode)];
    const auto &t = stats_[size_t(MemClass::Triangle)];
    uint64_t acc = n.l1Accesses + t.l1Accesses;
    uint64_t miss = n.l1Misses + t.l1Misses;
    return acc ? double(miss) / double(acc) : 0.0;
}

void
MemorySystem::enableBvhSeries(uint64_t window_cycles)
{
    bvhSeries_ = std::make_unique<WindowedSeries>(window_cycles);
}

void
MemorySystem::saveState(Serializer &s) const
{
    assert(!issuePhase_);
    s.beginChunk("MSYS");
    s.u32(uint32_t(l1s_.size()));
    for (const Cache &c : l1s_)
        c.saveState(s);
    l2_.saveState(s);
    s.b(l2Reserved_ != nullptr);
    if (l2Reserved_)
        l2Reserved_->saveState(s);
    pendingL1_.saveState(s);
    pendingL2_.saveState(s);
    s.u64(pendingSweep_);
    s.u64(dramBusyUntil_);
    for (const MemClassStats &st : stats_) {
        s.u64(st.l1Accesses);
        s.u64(st.l1Misses);
        s.u64(st.l2Accesses);
        s.u64(st.l2Misses);
        s.u64(st.dramAccesses);
        s.u64(st.dramReadBytes);
        s.u64(st.dramWriteBytes);
        s.u64(st.writes);
    }
    s.b(bvhSeries_ != nullptr);
    if (bvhSeries_)
        bvhSeries_->saveState(s);
    s.endChunk();
}

void
MemorySystem::loadState(Deserializer &d)
{
    assert(!issuePhase_);
    d.beginChunk("MSYS");
    if (d.u32() != l1s_.size())
        throw SnapshotError("snapshot: L1 count mismatch");
    for (Cache &c : l1s_)
        c.loadState(d);
    l2_.loadState(d);
    bool has_reserved = d.b();
    if (has_reserved != (l2Reserved_ != nullptr))
        throw SnapshotError("snapshot: reserved-L2 presence mismatch");
    if (l2Reserved_)
        l2Reserved_->loadState(d);
    pendingL1_.loadState(d);
    pendingL2_.loadState(d);
    pendingSweep_ = d.u64();
    dramBusyUntil_ = d.u64();
    for (MemClassStats &st : stats_) {
        st.l1Accesses = d.u64();
        st.l1Misses = d.u64();
        st.l2Accesses = d.u64();
        st.l2Misses = d.u64();
        st.dramAccesses = d.u64();
        st.dramReadBytes = d.u64();
        st.dramWriteBytes = d.u64();
        st.writes = d.u64();
    }
    bool has_series = d.b();
    if (has_series != (bvhSeries_ != nullptr))
        throw SnapshotError("snapshot: BVH series presence mismatch");
    if (bvhSeries_)
        bvhSeries_->loadState(d);
    d.endChunk();
}

} // namespace trt
