#include "memsys/memsys.hh"

#include <algorithm>
#include <cassert>

namespace trt
{

const char *
memClassName(MemClass c)
{
    switch (c) {
      case MemClass::BvhNode:
        return "bvh_node";
      case MemClass::Triangle:
        return "triangle";
      case MemClass::RayData:
        return "ray_data";
      case MemClass::CtaState:
        return "cta_state";
      case MemClass::Shader:
        return "shader";
      case MemClass::QueueTable:
        return "queue_table";
      default:
        return "unknown";
    }
}

MemorySystem::MemorySystem(const MemConfig &cfg)
    : cfg_(cfg),
      l2_(std::max<uint64_t>(cfg.lineBytes * cfg.l2Ways,
                             cfg.l2Bytes - cfg.l2ReservedBytes),
          cfg.l2Ways, cfg.lineBytes),
      dramCyclesPerByte_(1.0 / cfg.dramBytesPerCycle)
{
    l1s_.reserve(cfg.numL1s);
    for (uint32_t i = 0; i < cfg.numL1s; i++)
        l1s_.emplace_back(cfg.l1Bytes, cfg.l1Ways, cfg.lineBytes);
    if (cfg.l2ReservedBytes > 0) {
        // Reserved partition is fully associative: it holds a known
        // working set (ray data) and should not suffer conflict misses.
        l2Reserved_ = std::make_unique<Cache>(cfg.l2ReservedBytes, 0,
                                              cfg.lineBytes);
    }
}

uint64_t
MemorySystem::dramService(uint64_t now, uint32_t bytes, MemClass cls,
                          bool is_write)
{
    auto &st = stats_[size_t(cls)];
    st.dramAccesses++;
    if (is_write)
        st.dramWriteBytes += bytes;
    else
        st.dramReadBytes += bytes;

    uint64_t service =
        std::max<uint64_t>(1, uint64_t(double(bytes) * dramCyclesPerByte_));
    uint64_t start = std::max(now, dramBusyUntil_);
    dramBusyUntil_ = start + service;
    // Completion = queueing delay + array latency + service.
    return start + cfg_.dramLatency + service;
}

void
MemorySystem::notePending(std::unordered_map<uint64_t, LineFill> &map,
                          uint64_t key, uint64_t ready)
{
    map[key] = LineFill{ready};
    if (++pendingSweep_ >= 65536) {
        pendingSweep_ = 0;
        cleanPending(pendingL1_, ready);
        cleanPending(pendingL2_, ready);
    }
}

uint64_t
MemorySystem::pendingReady(const std::unordered_map<uint64_t, LineFill> &map,
                           uint64_t key, uint64_t now) const
{
    auto it = map.find(key);
    if (it == map.end() || it->second.readyCycle <= now)
        return 0;
    return it->second.readyCycle;
}

void
MemorySystem::cleanPending(std::unordered_map<uint64_t, LineFill> &map,
                           uint64_t now)
{
    for (auto it = map.begin(); it != map.end();) {
        if (it->second.readyCycle <= now)
            it = map.erase(it);
        else
            ++it;
    }
}

uint64_t
MemorySystem::readLine(uint64_t now, uint32_t sm, uint64_t line_addr,
                       MemClass cls, bool bypass_l1, bool install_only)
{
    auto &st = stats_[size_t(cls)];
    bool bvh = cls == MemClass::BvhNode || cls == MemClass::Triangle;
    uint64_t l1_key = (uint64_t(sm) << 48) | (line_addr & 0xffffffffffffull);

    if (!bypass_l1) {
        st.l1Accesses++;
        bool hit = install_only ? l1s_[sm].probe(line_addr)
                                : l1s_[sm].access(line_addr);
        if (hit) {
            // If the line's fill is still in flight, wait for it.
            uint64_t pend = pendingReady(pendingL1_, l1_key, now);
            uint64_t ready = std::max(now + cfg_.l1HitLatency, pend);
            if (bvh && bvhSeries_)
                bvhSeries_->record(now, 0, 1);
            return ready;
        }
        st.l1Misses++;
        if (bvh && bvhSeries_)
            bvhSeries_->record(now, 1, 1);
        if (install_only)
            l1s_[sm].install(line_addr);
    }

    // L2 lookup. Ray data goes to the reserved partition when present.
    Cache *l2 = &l2_;
    if (cls == MemClass::RayData && l2Reserved_)
        l2 = l2Reserved_.get();
    st.l2Accesses++;
    bool l2_hit = l2->access(line_addr);
    uint64_t ready;
    if (l2_hit) {
        uint64_t pend = pendingReady(pendingL2_, line_addr, now);
        ready = std::max(now + cfg_.l2HitLatency, pend);
    } else {
        st.l2Misses++;
        ready = dramService(now + cfg_.l2HitLatency, cfg_.lineBytes, cls,
                            false);
        notePending(pendingL2_, line_addr, ready);
    }
    if (!bypass_l1)
        notePending(pendingL1_, l1_key, ready);
    return ready;
}

MemorySystem::Access
MemorySystem::read(uint64_t now, uint32_t sm, uint64_t addr, uint32_t bytes,
                   MemClass cls, bool bypass_l1)
{
    assert(sm < l1s_.size());
    Access acc;
    uint64_t first = l1s_[sm].lineAddr(addr);
    uint64_t last = l1s_[sm].lineAddr(addr + (bytes ? bytes - 1 : 0));

    // Multi-line requests issue back to back; completion is the max.
    uint64_t ready = now;
    uint32_t line = 0;
    for (uint64_t a = first; a <= last; a += cfg_.lineBytes, line++) {
        uint64_t r = readLine(now + line, sm, a, cls, bypass_l1, false);
        ready = std::max(ready, r);
        if (line == 0) {
            // Report hit levels of the first line (diagnostics only).
            acc.l1Hit = r <= now + cfg_.l1HitLatency;
            acc.l2Hit = r <= now + cfg_.l2HitLatency;
        }
    }
    acc.readyCycle = ready;
    return acc;
}

void
MemorySystem::write(uint64_t now, uint32_t sm, uint64_t addr, uint32_t bytes,
                    MemClass cls)
{
    (void)sm;
    (void)addr;
    auto &st = stats_[size_t(cls)];
    st.writes++;
    // Write-through, no-allocate: consume DRAM bandwidth only. The
    // requester does not wait (stores retire through a write queue).
    dramService(now, bytes, cls, true);
}

uint64_t
MemorySystem::prefetchL1(uint64_t now, uint32_t sm, uint64_t addr,
                         uint32_t bytes, MemClass cls)
{
    assert(sm < l1s_.size());
    uint64_t first = l1s_[sm].lineAddr(addr);
    uint64_t last = l1s_[sm].lineAddr(addr + (bytes ? bytes - 1 : 0));

    uint64_t ready = now;
    uint32_t line = 0;
    for (uint64_t a = first; a <= last; a += cfg_.lineBytes, line++) {
        uint64_t l1_key = (uint64_t(sm) << 48) | (a & 0xffffffffffffull);
        if (l1s_[sm].probe(a)) {
            // Already resident; maybe still in flight from earlier.
            ready = std::max(ready, pendingReady(pendingL1_, l1_key, now));
            continue;
        }
        uint64_t r = readLine(now + line, sm, a, cls, false, true);
        notePending(pendingL1_, l1_key, r);
        ready = std::max(ready, r);
    }
    return ready;
}

bool
MemorySystem::l1Probe(uint32_t sm, uint64_t addr) const
{
    return l1s_[sm].probe(addr);
}

MemClassStats
MemorySystem::totalStats() const
{
    MemClassStats t;
    for (const auto &s : stats_) {
        t.l1Accesses += s.l1Accesses;
        t.l1Misses += s.l1Misses;
        t.l2Accesses += s.l2Accesses;
        t.l2Misses += s.l2Misses;
        t.dramAccesses += s.dramAccesses;
        t.dramReadBytes += s.dramReadBytes;
        t.dramWriteBytes += s.dramWriteBytes;
        t.writes += s.writes;
    }
    return t;
}

double
MemorySystem::bvhL1MissRate() const
{
    const auto &n = stats_[size_t(MemClass::BvhNode)];
    const auto &t = stats_[size_t(MemClass::Triangle)];
    uint64_t acc = n.l1Accesses + t.l1Accesses;
    uint64_t miss = n.l1Misses + t.l1Misses;
    return acc ? double(miss) / double(acc) : 0.0;
}

void
MemorySystem::enableBvhSeries(uint64_t window_cycles)
{
    bvhSeries_ = std::make_unique<WindowedSeries>(window_cycles);
}

} // namespace trt
