/**
 * @file
 * A single cache level: LRU replacement, set-associative or fully
 * associative (the paper's Table 1 L1 is 16KB fully associative LRU, the
 * L2 is 128KB 16-way). Tracks line presence only; latency and bandwidth
 * are modeled by MemorySystem.
 */

#ifndef TRT_MEMSYS_CACHE_HH
#define TRT_MEMSYS_CACHE_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace trt
{

/** One cache structure (tag store only). */
class Cache
{
  public:
    /**
     * @param size_bytes Total capacity.
     * @param ways Associativity; 0 means fully associative.
     * @param line_bytes Line size.
     */
    Cache(uint64_t size_bytes, uint32_t ways, uint32_t line_bytes);

    uint32_t lineBytes() const { return lineBytes_; }
    uint64_t lines() const { return lines_; }

    /** Line-aligned address of @p addr. */
    uint64_t lineAddr(uint64_t addr) const { return addr & ~mask_; }

    /**
     * Access @p addr (any byte address): on hit, update LRU and return
     * true; on miss, install the line (allocate-on-miss, evicting LRU)
     * and return false.
     */
    bool access(uint64_t addr);

    /** True when the line holding @p addr is present (no LRU update). */
    bool probe(uint64_t addr) const;

    /** Install the line holding @p addr without counting as an access
     *  (prefetch fill). */
    void install(uint64_t addr);

    /** Drop every line. */
    void invalidateAll();

    /** Lines currently resident (diagnostics). */
    uint64_t residentLines() const;

  private:
    // --- fully associative implementation: hash map + intrusive LRU ---
    struct FaSlot
    {
        uint64_t tag = ~0ull;
        uint32_t prev = ~0u;
        uint32_t next = ~0u;
        bool valid = false;
    };

    bool faAccess(uint64_t tag, bool install_only);
    void faTouch(uint32_t slot);
    void faDetach(uint32_t slot);
    void faAttachFront(uint32_t slot);

    // --- set associative implementation: per-set arrays + stamps ------
    struct SaWay
    {
        uint64_t tag = ~0ull;
        uint64_t stamp = 0;
        bool valid = false;
    };

    bool saAccess(uint64_t tag, bool install_only);

    uint32_t lineBytes_;
    uint64_t mask_;
    uint64_t lines_;
    uint32_t ways_;      //!< 0 = fully associative.
    uint64_t sets_ = 1;

    // Fully associative state.
    std::unordered_map<uint64_t, uint32_t> faMap_;
    std::vector<FaSlot> faSlots_;
    std::vector<uint32_t> faFree_;
    uint32_t faHead_ = ~0u; //!< MRU.
    uint32_t faTail_ = ~0u; //!< LRU.

    // Set associative state.
    std::vector<SaWay> saWays_;
    uint64_t stampCounter_ = 0;
};

} // namespace trt

#endif // TRT_MEMSYS_CACHE_HH
