/**
 * @file
 * A single cache level: LRU replacement, set-associative or fully
 * associative (the paper's Table 1 L1 is 16KB fully associative LRU, the
 * L2 is 128KB 16-way). Tracks line presence only; latency and bandwidth
 * are modeled by MemorySystem.
 */

#ifndef TRT_MEMSYS_CACHE_HH
#define TRT_MEMSYS_CACHE_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "snapshot/serializer.hh"

namespace trt
{

/** One cache structure (tag store only). */
class Cache
{
  public:
    /**
     * @param size_bytes Total capacity.
     * @param ways Associativity; 0 means fully associative.
     * @param line_bytes Line size.
     */
    Cache(uint64_t size_bytes, uint32_t ways, uint32_t line_bytes);

    uint32_t lineBytes() const { return lineBytes_; }
    uint64_t lines() const { return lines_; }

    /** Line-aligned address of @p addr. */
    uint64_t lineAddr(uint64_t addr) const { return addr & ~mask_; }

    /**
     * Access @p addr (any byte address): on hit, update LRU and return
     * true; on miss, install the line (allocate-on-miss, evicting LRU)
     * and return false.
     */
    bool access(uint64_t addr);

    /** True when the line holding @p addr is present (no LRU update). */
    bool probe(uint64_t addr) const;

    /** Install the line holding @p addr without counting as an access
     *  (prefetch fill). */
    void install(uint64_t addr);

    /** Drop every line. */
    void invalidateAll();

    /** Lines currently resident. O(1): maintained on fill/invalidate,
     *  not recounted by scanning the tag store. */
    uint64_t
    residentLines() const
    {
        return ways_ == 0 ? faMap_.size() : saResident_;
    }

    /**
     * Snapshot hooks (DESIGN.md §7). The FA tag store is captured as
     * the recency-ordered tag list (MRU first) and rebuilt by
     * installing LRU-first into an invalidated store: slot indices and
     * free-list order may differ from the original, but hit/miss and
     * eviction behavior — the only observable state — are identical.
     * The SA store round-trips its ways and LRU stamps verbatim.
     */
    void saveState(Serializer &s) const;
    void loadState(Deserializer &d);

  private:
    // --- fully associative implementation: hash map + intrusive LRU ---
    struct FaSlot
    {
        uint64_t tag = ~0ull;
        uint32_t prev = ~0u;
        uint32_t next = ~0u;
        bool valid = false;
    };

    bool faAccess(uint64_t tag, bool install_only);
    void faTouch(uint32_t slot);
    void faDetach(uint32_t slot);
    void faAttachFront(uint32_t slot);

    /**
     * tag -> slot index map: open-addressed, linear-probed, fixed
     * power-of-two capacity >= 2x the line count (entries are bounded
     * by the line count, so it never grows). ~0 is the empty key; a
     * real tag of ~0 would need a ~2^70-byte address space. Erasure
     * uses backward-shift deletion, keeping probe chains intact with
     * no tombstones. Replaces a node-allocating hash map on the
     * hottest path of every L1 access.
     */
    class FaMap
    {
      public:
        void
        init(uint64_t lines)
        {
            std::size_t cap = 16;
            while (cap < lines * 2)
                cap *= 2;
            keys_.assign(cap, kEmpty);
            vals_.assign(cap, 0);
            mask_ = cap - 1;
        }

        /** Slot of @p tag, or ~0u when absent. */
        uint32_t
        find(uint64_t tag) const
        {
            std::size_t i = hashOf(tag) & mask_;
            while (keys_[i] != kEmpty) {
                if (keys_[i] == tag)
                    return vals_[i];
                i = (i + 1) & mask_;
            }
            return ~0u;
        }

        /** Insert @p tag (must be absent) mapping to @p slot. */
        void
        insert(uint64_t tag, uint32_t slot)
        {
            std::size_t i = hashOf(tag) & mask_;
            while (keys_[i] != kEmpty)
                i = (i + 1) & mask_;
            keys_[i] = tag;
            vals_[i] = slot;
            size_++;
        }

        /** Erase @p tag (must be present); backward-shift compaction. */
        void
        erase(uint64_t tag)
        {
            std::size_t i = hashOf(tag) & mask_;
            while (keys_[i] != tag)
                i = (i + 1) & mask_;
            keys_[i] = kEmpty;
            size_--;
            std::size_t j = i;
            for (;;) {
                j = (j + 1) & mask_;
                if (keys_[j] == kEmpty)
                    return;
                std::size_t k = hashOf(keys_[j]) & mask_;
                // Leave j in place if its home k lies cyclically in
                // (i, j]; otherwise it probed across the new hole and
                // must shift back into it.
                bool reachable = (i < j) ? (k > i && k <= j)
                                         : (k > i || k <= j);
                if (!reachable) {
                    keys_[i] = keys_[j];
                    vals_[i] = vals_[j];
                    keys_[j] = kEmpty;
                    i = j;
                }
            }
        }

        void
        clear()
        {
            keys_.assign(keys_.size(), kEmpty);
            size_ = 0;
        }

        std::size_t size() const { return size_; }

      private:
        static constexpr uint64_t kEmpty = ~0ull;

        static std::size_t
        hashOf(uint64_t tag)
        {
            return std::size_t((tag * 0x9E3779B97F4A7C15ull) >> 32);
        }

        std::vector<uint64_t> keys_;
        std::vector<uint32_t> vals_;
        std::size_t mask_ = 0;
        std::size_t size_ = 0;
    };

    // --- set associative implementation: per-set arrays + stamps ------
    struct SaWay
    {
        uint64_t tag = ~0ull;
        uint64_t stamp = 0;
        bool valid = false;
    };

    bool saAccess(uint64_t tag, bool install_only);

    uint32_t lineBytes_;
    uint64_t mask_;
    uint64_t lines_;
    uint32_t ways_;      //!< 0 = fully associative.
    uint64_t sets_ = 1;

    // Fully associative state.
    FaMap faMap_;
    std::vector<FaSlot> faSlots_;
    std::vector<uint32_t> faFree_;
    uint32_t faHead_ = ~0u; //!< MRU.
    uint32_t faTail_ = ~0u; //!< LRU.

    // Set associative state.
    std::vector<SaWay> saWays_;
    uint64_t stampCounter_ = 0;
    uint64_t saResident_ = 0; //!< Valid ways (lines never un-fill).
};

} // namespace trt

#endif // TRT_MEMSYS_CACHE_HH
