#include "memsys/cache.hh"

#include <cassert>

namespace trt
{

namespace
{

[[maybe_unused]] bool
isPow2(uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

} // anonymous namespace

Cache::Cache(uint64_t size_bytes, uint32_t ways, uint32_t line_bytes)
    : lineBytes_(line_bytes), mask_(line_bytes - 1),
      lines_(size_bytes / line_bytes), ways_(ways)
{
    assert(isPow2(line_bytes));
    assert(lines_ > 0);

    if (ways_ == 0) {
        faSlots_.resize(lines_);
        faFree_.reserve(lines_);
        for (uint32_t i = 0; i < lines_; i++)
            faFree_.push_back(uint32_t(lines_ - 1 - i));
        faMap_.init(lines_);
    } else {
        sets_ = lines_ / ways_;
        assert(sets_ > 0 && isPow2(sets_));
        saWays_.resize(lines_);
    }
}

bool
Cache::access(uint64_t addr)
{
    uint64_t tag = addr / lineBytes_;
    return ways_ == 0 ? faAccess(tag, false) : saAccess(tag, false);
}

bool
Cache::probe(uint64_t addr) const
{
    uint64_t tag = addr / lineBytes_;
    if (ways_ == 0)
        return faMap_.find(tag) != ~0u;
    uint64_t set = tag & (sets_ - 1);
    const SaWay *base = &saWays_[set * ways_];
    for (uint32_t w = 0; w < ways_; w++)
        if (base[w].valid && base[w].tag == tag)
            return true;
    return false;
}

void
Cache::install(uint64_t addr)
{
    uint64_t tag = addr / lineBytes_;
    if (ways_ == 0)
        faAccess(tag, true);
    else
        saAccess(tag, true);
}

void
Cache::invalidateAll()
{
    if (ways_ == 0) {
        faMap_.clear();
        faFree_.clear();
        for (uint32_t i = 0; i < lines_; i++) {
            faSlots_[i] = FaSlot{};
            faFree_.push_back(uint32_t(lines_ - 1 - i));
        }
        faHead_ = faTail_ = ~0u;
    } else {
        for (auto &w : saWays_)
            w = SaWay{};
        saResident_ = 0;
    }
}

void
Cache::faDetach(uint32_t slot)
{
    FaSlot &s = faSlots_[slot];
    if (s.prev != ~0u)
        faSlots_[s.prev].next = s.next;
    else
        faHead_ = s.next;
    if (s.next != ~0u)
        faSlots_[s.next].prev = s.prev;
    else
        faTail_ = s.prev;
    s.prev = s.next = ~0u;
}

void
Cache::faAttachFront(uint32_t slot)
{
    FaSlot &s = faSlots_[slot];
    s.prev = ~0u;
    s.next = faHead_;
    if (faHead_ != ~0u)
        faSlots_[faHead_].prev = slot;
    faHead_ = slot;
    if (faTail_ == ~0u)
        faTail_ = slot;
}

void
Cache::faTouch(uint32_t slot)
{
    if (faHead_ == slot)
        return;
    faDetach(slot);
    faAttachFront(slot);
}

bool
Cache::faAccess(uint64_t tag, bool install_only)
{
    uint32_t found = faMap_.find(tag);
    if (found != ~0u) {
        if (!install_only)
            faTouch(found);
        return true;
    }

    uint32_t slot;
    if (!faFree_.empty()) {
        slot = faFree_.back();
        faFree_.pop_back();
    } else {
        slot = faTail_;
        faDetach(slot);
        faMap_.erase(faSlots_[slot].tag);
    }
    faSlots_[slot].tag = tag;
    faSlots_[slot].valid = true;
    faAttachFront(slot);
    faMap_.insert(tag, slot);
    return false;
}

void
Cache::saveState(Serializer &s) const
{
    s.beginChunk("CACH");
    s.u32(lineBytes_);
    s.u64(lines_);
    s.u32(ways_);
    if (ways_ == 0) {
        // Recency-ordered tag walk, MRU first.
        std::vector<uint64_t> tags;
        tags.reserve(faMap_.size());
        for (uint32_t i = faHead_; i != ~0u; i = faSlots_[i].next)
            tags.push_back(faSlots_[i].tag);
        s.vecPod(tags);
    } else {
        s.u64(stampCounter_);
        s.u64(saResident_);
        for (const SaWay &w : saWays_) {
            s.u64(w.tag);
            s.u64(w.stamp);
            s.b(w.valid);
        }
    }
    s.endChunk();
}

void
Cache::loadState(Deserializer &d)
{
    d.beginChunk("CACH");
    if (d.u32() != lineBytes_ || d.u64() != lines_ || d.u32() != ways_)
        throw SnapshotError("snapshot: cache geometry mismatch");
    invalidateAll();
    if (ways_ == 0) {
        std::vector<uint64_t> tags = d.vecPod<uint64_t>();
        if (tags.size() > lines_)
            throw SnapshotError("snapshot: FA cache overfull");
        // Install LRU-first so the rebuilt recency chain matches.
        for (auto it = tags.rbegin(); it != tags.rend(); ++it)
            faAccess(*it, true);
    } else {
        stampCounter_ = d.u64();
        saResident_ = d.u64();
        for (SaWay &w : saWays_) {
            w.tag = d.u64();
            w.stamp = d.u64();
            w.valid = d.b();
        }
    }
    d.endChunk();
}

bool
Cache::saAccess(uint64_t tag, bool install_only)
{
    uint64_t set = tag & (sets_ - 1);
    SaWay *base = &saWays_[set * ways_];
    stampCounter_++;
    // Single pass: hit detection, first invalid way, and LRU victim at
    // once. The victim matches the old two-pass scan exactly — a first
    // invalid way wins, else the lowest-indexed minimum stamp.
    uint32_t invalid = ~0u;
    uint32_t lru = 0;
    uint64_t best = ~0ull;
    for (uint32_t w = 0; w < ways_; w++) {
        if (!base[w].valid) {
            if (invalid == ~0u)
                invalid = w;
            continue;
        }
        if (base[w].tag == tag) {
            if (!install_only)
                base[w].stamp = stampCounter_;
            return true;
        }
        if (base[w].stamp < best) {
            best = base[w].stamp;
            lru = w;
        }
    }
    uint32_t victim = invalid != ~0u ? invalid : lru;
    if (invalid != ~0u)
        saResident_++;
    base[victim].valid = true;
    base[victim].tag = tag;
    base[victim].stamp = stampCounter_;
    return false;
}

} // namespace trt
