/**
 * @file
 * trt_farm — sharded, fault-tolerant sweep orchestrator (DESIGN.md
 * §13).
 *
 *   trt_farm [flags] <manifest.json>
 *
 *   --dry-run        Print the expanded job list with per-job
 *                    fingerprints and cache-hit status; run nothing.
 *   --serial         Run all jobs in-process (golden-reference mode).
 *   --workers N      Worker pool size      (default TRT_FARM_WORKERS).
 *   --retries N      Extra attempts/job    (default TRT_FARM_RETRIES).
 *   --timeout S      Per-attempt wall cap  (default TRT_FARM_TIMEOUT_S).
 *   --out DIR        Results directory     (default results/farm).
 *
 * Exit status: 0 when every job completed (cached or simulated),
 * 1 when any job exhausted its retries, 2 on a usage/manifest error.
 */

#include <cstdio>
#include <exception>
#include <string>

#include "farm/manifest.hh"
#include "farm/scheduler.hh"
#include "util/env.hh"

namespace
{

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--dry-run] [--serial] [--workers N] "
                 "[--retries N] [--timeout S] [--out DIR] "
                 "<manifest.json>\n",
                 argv0);
    std::exit(2);
}

const char *
flagValue(int argc, char **argv, int &i, const char *argv0)
{
    if (i + 1 >= argc)
        usage(argv0);
    return argv[++i];
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    using namespace trt;
    try {
        FarmOptions opt = FarmOptions::fromEnv();
        std::string manifest_path;
        for (int i = 1; i < argc; i++) {
            std::string a = argv[i];
            if (a == "--dry-run") {
                opt.dryRun = true;
            } else if (a == "--serial") {
                opt.serial = true;
            } else if (a == "--workers") {
                opt.workers = uint32_t(parseUIntText(
                    "--workers", flagValue(argc, argv, i, argv[0]),
                    256));
            } else if (a == "--retries") {
                opt.retries = uint32_t(parseUIntText(
                    "--retries", flagValue(argc, argv, i, argv[0]),
                    100));
            } else if (a == "--timeout") {
                opt.timeoutS = parseDoubleText(
                    "--timeout", flagValue(argc, argv, i, argv[0]));
                if (opt.timeoutS <= 0)
                    throw EnvError(
                        "--timeout: expected a positive number");
            } else if (a == "--out") {
                opt.outDir = flagValue(argc, argv, i, argv[0]);
            } else if (a == "--help" || a == "-h") {
                usage(argv[0]);
            } else if (!a.empty() && a[0] == '-') {
                std::fprintf(stderr, "unknown flag: %s\n", a.c_str());
                usage(argv[0]);
            } else if (manifest_path.empty()) {
                manifest_path = a;
            } else {
                usage(argv[0]);
            }
        }
        if (manifest_path.empty())
            usage(argv[0]);

        Manifest m = Manifest::load(manifest_path);
        std::fprintf(stderr,
                     "[farm] manifest %s: %zu jobs (%zu duplicates "
                     "dropped)\n",
                     m.name.c_str(), m.jobs.size(), m.duplicates);
        FarmResult res = runFarm(m, opt);
        if (!opt.dryRun)
            std::printf("%s\n", res.summaryLine().c_str());
        return res.ok() ? 0 : 1;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "trt_farm: %s\n", e.what());
        return 2;
    }
}
