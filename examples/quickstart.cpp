/**
 * @file
 * Quickstart: build a scene, build its BVH, simulate the baseline GPU
 * and the virtualized-treelet-queue GPU, and compare. This is the
 * ten-line introduction to the library's public API.
 */

#include <iostream>

#include "core/arch.hh"
#include "scene/registry.hh"

int
main(int argc, char **argv)
{
    using namespace trt;

    // 1. Build a benchmark scene (a LumiBench stand-in) and its BVH.
    //    The scale factor trades fidelity for speed.
    std::string name = argc > 1 ? argv[1] : "BUNNY";
    float scale = argc > 2 ? float(atof(argv[2])) : 0.25f;
    Scene scene = buildScene(name, scale);
    Bvh bvh = Bvh::build(scene.triangles);

    std::cout << "scene " << name << ": " << scene.triangles.size()
              << " triangles, BVH "
              << bvh.totalBytes() / 1024 / 1024.0 << " MB in "
              << bvh.treeletCount() << " treelets\n";

    // 2. Simulate the baseline ray-tracing GPU (paper Table 1 config,
    //    smaller frame so the example finishes in seconds).
    GpuConfig base;
    base.imageWidth = base.imageHeight = 128;
    RunStats rb = simulate(base, scene, bvh);
    std::cout << "baseline:       " << rb.cycles << " cycles, SIMT "
              << rb.simtEfficiency() << ", BVH L1 miss "
              << rb.bvhL1MissRate << "\n";

    // 3. Simulate the paper's Virtualized Treelet Queues.
    GpuConfig vtq = GpuConfig::virtualizedTreeletQueues();
    vtq.imageWidth = vtq.imageHeight = 128;
    RunStats rv = simulate(vtq, scene, bvh);
    std::cout << "treelet queues: " << rv.cycles << " cycles, SIMT "
              << rv.simtEfficiency() << ", BVH L1 miss "
              << rv.bvhL1MissRate << "\n";

    std::cout << "speedup: " << double(rb.cycles) / double(rv.cycles)
              << "x\n";

    // 4. Both runs rendered the identical image (the timing models are
    //    functionally exact); prove it.
    bool same = rb.framebuffer == rv.framebuffer;
    std::cout << "identical rendered frames: " << (same ? "yes" : "NO")
              << "\n";
    return same ? 0 : 1;
}
