/**
 * @file
 * General tree-traversal on the RT unit (the paper's section 8
 * future-work direction): a fixed-radius nearest-neighbor workload in
 * the style of RTNN / RT-DBSCAN, lowered to splat geometry + query
 * rays, validated against brute force, and timed on the baseline GPU
 * versus virtualized treelet queues.
 *
 * Usage: rt_query [points] [queries] [uniform|clustered|shell]
 */

#include <iostream>
#include <string>

#include "core/arch.hh"
#include "workloads/rt_query.hh"

int
main(int argc, char **argv)
{
    using namespace trt;

    RtQueryConfig cfg;
    cfg.numPoints = argc > 1 ? uint32_t(atoi(argv[1])) : 50000;
    cfg.numQueries = argc > 2 ? uint32_t(atoi(argv[2])) : 16384;
    if (argc > 3) {
        std::string d = argv[3];
        cfg.distribution = d == "uniform" ? PointDistribution::Uniform
                           : d == "shell" ? PointDistribution::Shell
                                          : PointDistribution::Clustered;
    }

    RtQueryWorkload wl = buildRtQueryWorkload(cfg);
    Bvh bvh = Bvh::build(wl.scene.triangles);
    std::cout << "point cloud: " << wl.points.size() << " points -> "
              << wl.scene.triangles.size() << " splat triangles, BVH "
              << bvh.totalBytes() / 1048576.0 << " MB in "
              << bvh.treeletCount() << " treelets\n";

    // Functional answers + spot validation against brute force.
    auto answers = answerQueries(wl, bvh);
    uint32_t hits = 0, checked = 0, mismatches = 0;
    for (size_t i = 0; i < answers.size(); i++) {
        hits += answers[i].nearest != ~0u ? 1 : 0;
        if (i % 97 == 0) {
            QueryResult bf = bruteForceNearest(
                wl.points, wl.queries[i].orig, wl.queryRadius);
            checked++;
            if (bf.nearest != answers[i].nearest)
                mismatches++;
        }
    }
    std::cout << "queries with a neighbor in range: " << hits << "/"
              << answers.size() << "; brute-force spot check: "
              << (checked - mismatches) << "/" << checked << " agree\n";

    // Timing: baseline vs virtualized treelet queues on the query rays.
    GpuConfig base;
    RunStats rb = simulateRays(base, wl.scene, bvh, wl.queries);
    GpuConfig vtq = GpuConfig::virtualizedTreeletQueues();
    RunStats rv = simulateRays(vtq, wl.scene, bvh, wl.queries);

    std::cout << "baseline GPU:   " << rb.cycles << " cycles, SIMT "
              << rb.simtEfficiency() << ", BVH L1 miss "
              << rb.bvhL1MissRate << "\n"
              << "treelet queues: " << rv.cycles << " cycles, SIMT "
              << rv.simtEfficiency() << ", BVH L1 miss "
              << rv.bvhL1MissRate << "\n"
              << "query throughput speedup: "
              << double(rb.cycles) / double(rv.cycles) << "x\n";
    return mismatches == 0 ? 0 : 1;
}
