/**
 * @file
 * Render every benchmark scene with the functional path tracer and
 * write PPM images — a visual check that the LumiBench stand-ins are
 * real scenes, not noise. (The timing simulators produce bit-identical
 * frames; this example uses the fast functional path.)
 *
 * Usage: render_gallery [out_dir] [resolution] [scale]
 */

#include <filesystem>
#include <fstream>
#include <iostream>

#include "gpu/shader.hh"
#include "scene/registry.hh"

namespace
{

using namespace trt;

/** Simple gamma + clamp tone mapping to 8-bit. */
uint8_t
tonemap(float v)
{
    float g = std::pow(std::fmax(0.0f, v), 1.0f / 2.2f);
    return uint8_t(std::fmin(255.0f, g * 255.0f));
}

void
writePpm(const std::filesystem::path &path, const std::vector<Vec3> &fb,
         uint32_t w, uint32_t h)
{
    std::ofstream out(path, std::ios::binary);
    out << "P6\n" << w << " " << h << "\n255\n";
    for (const Vec3 &c : fb) {
        // Scale down: emissive panels are ~10x brighter than 1.0.
        uint8_t rgb[3] = {tonemap(c.x * 0.25f), tonemap(c.y * 0.25f),
                          tonemap(c.z * 0.25f)};
        out.write(reinterpret_cast<const char *>(rgb), 3);
    }
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    using namespace trt;
    std::filesystem::path out_dir = argc > 1 ? argv[1] : "gallery";
    uint32_t res = argc > 2 ? uint32_t(atoi(argv[2])) : 128;
    float scale = argc > 3 ? float(atof(argv[3])) : 0.25f;

    std::filesystem::create_directories(out_dir);
    for (const std::string &name : sceneNames()) {
        Scene scene = buildScene(name, scale);
        Bvh bvh = Bvh::build(scene.triangles);
        auto fb = renderReference(scene, bvh, res, res, 3, 0.02f);

        // Report average luminance as a sanity signal.
        double lum = 0.0;
        for (const Vec3 &c : fb)
            lum += avg(c);
        lum /= double(fb.size());

        auto path = out_dir / (name + ".ppm");
        writePpm(path, fb, res, res);
        std::cout << name << " -> " << path.string() << "  ("
                  << scene.triangles.size() << " tris, avg luminance "
                  << lum << ")\n";
    }
    return 0;
}
