/**
 * @file
 * Architecture explorer: sweep one configuration parameter of the
 * virtualized-treelet-queue GPU and print cycles / SIMT efficiency /
 * miss rate for each value — the tool you reach for when asking "what
 * if the queue threshold were 64?" or "how much does the ray cap
 * matter?".
 *
 * Usage: arch_explorer [scene] [param] [v1 v2 ...]
 *   param in {queue, repack, diverge, rays, l1kb, warpbuf}
 */

#include <iostream>
#include <string>
#include <vector>

#include "harness/harness.hh"

int
main(int argc, char **argv)
{
    using namespace trt;
    std::string scene = argc > 1 ? argv[1] : "CRNVL";
    std::string param = argc > 2 ? argv[2] : "queue";
    std::vector<uint32_t> values;
    for (int i = 3; i < argc; i++)
        values.push_back(uint32_t(atoi(argv[i])));
    if (values.empty()) {
        if (param == "queue")
            values = {16, 32, 64, 128, 256};
        else if (param == "repack")
            values = {0, 8, 16, 22, 28};
        else if (param == "diverge")
            values = {0, 1, 2, 4, 8};
        else if (param == "rays")
            values = {64, 256, 1024, 4096};
        else if (param == "l1kb")
            values = {8, 16, 32, 64};
        else if (param == "warpbuf")
            values = {1, 2, 4};
        else {
            std::cerr << "unknown param " << param << "\n";
            return 1;
        }
    }

    HarnessOptions opt = HarnessOptions::fromEnv();
    opt.scenes = {scene};

    GpuConfig base = opt.apply(GpuConfig{});
    uint64_t cb = runScene(scene, base, opt).cycles;
    std::cout << "scene " << scene << ", baseline " << cb
              << " cycles; sweeping '" << param << "'\n\n";

    Table t({param, "cycles", "speedup_vs_baseline", "simt", "bvh_miss"});
    for (uint32_t v : values) {
        GpuConfig c = opt.apply(GpuConfig::virtualizedTreeletQueues());
        if (param == "queue")
            c.queueThreshold = v;
        else if (param == "repack")
            c.repackThreshold = v;
        else if (param == "diverge")
            c.initialDivergeThreshold = v;
        else if (param == "rays")
            c.maxVirtualRaysPerSm = v;
        else if (param == "l1kb") {
            c.mem.l1Bytes = uint64_t(v) * 1024;
        } else if (param == "warpbuf")
            c.warpBufferSize = v;

        RunStats r = runScene(scene, c, opt);
        t.row()
            .cell(uint64_t(v))
            .cell(r.cycles)
            .cell(double(cb) / double(r.cycles), 3)
            .cell(r.simtEfficiency(), 3)
            .cell(r.bvhL1MissRate, 3);
    }
    t.print(std::cout);
    return 0;
}
