/**
 * @file
 * Treelet inspector: build a scene's BVH, print the treelet partition
 * statistics, and show an ASCII histogram of treelet sizes plus the
 * per-ray treelet-visit distribution — useful when reasoning about why
 * treelet queues do or don't pay off on a given scene.
 *
 * Usage: treelet_inspector [scene] [scale]
 */

#include <algorithm>
#include <iostream>
#include <map>

#include "analytic/analytic.hh"
#include "bvh/traverser.hh"
#include "scene/registry.hh"

int
main(int argc, char **argv)
{
    using namespace trt;
    std::string name = argc > 1 ? argv[1] : "CRNVL";
    float scale = argc > 2 ? float(atof(argv[2])) : 0.25f;

    Scene scene = buildScene(name, scale);
    Bvh bvh = Bvh::build(scene.triangles);
    BvhStats st = bvh.stats();

    std::cout << "scene " << name << " @ scale " << scale << "\n"
              << "  triangles:       " << st.triCount << "\n"
              << "  wide nodes:      " << st.nodeCount << "\n"
              << "  max depth:       " << st.maxDepth << "\n"
              << "  avg leaf tris:   " << st.avgLeafTris << "\n"
              << "  BVH bytes:       " << st.totalBytes << " ("
              << st.totalBytes / 1048576.0 << " MB)\n"
              << "  treelets:        " << st.treeletCount << "\n"
              << "  avg treelet:     " << st.avgTreeletBytes << " B, "
              << st.avgTreeletNodes << " nodes, depth "
              << st.avgTreeletDepth << "\n\n";

    // Histogram of treelet byte sizes.
    std::map<uint32_t, uint32_t> histo; // bucket(KB) -> count
    for (uint32_t t = 0; t < bvh.treeletCount(); t++)
        histo[bvh.treeletBytes(t) / 1024]++;
    uint32_t max_count = 0;
    for (auto &[kb, n] : histo)
        max_count = std::max(max_count, n);
    std::cout << "treelet size histogram (KB buckets):\n";
    for (auto &[kb, n] : histo) {
        int bar = int(50.0 * n / max_count);
        std::cout << "  " << kb << "-" << kb + 1 << "KB | "
                  << std::string(size_t(bar), '#') << " " << n << "\n";
    }

    // Per-ray treelet visits from a functional trace of the frame.
    auto traces = recordTraces(scene, bvh, 64, 64, 3, 0.02f, 20000);
    std::map<size_t, uint32_t> visits;
    uint64_t total_visits = 0, total_nodes = 0;
    for (const auto &tr : traces) {
        visits[tr.treelets.size()]++;
        total_visits += tr.treelets.size();
        total_nodes += tr.nodesVisited;
    }
    std::cout << "\nrays traced: " << traces.size()
              << ", avg unique treelets/ray: "
              << double(total_visits) / double(traces.size())
              << ", avg nodes/ray: "
              << double(total_nodes) / double(traces.size()) << "\n";
    std::cout << "unique-treelets-per-ray distribution:\n";
    max_count = 0;
    for (auto &[k, n] : visits)
        max_count = std::max(max_count, n);
    for (auto &[k, n] : visits) {
        if (k > 24)
            break;
        int bar = int(50.0 * n / max_count);
        std::cout << "  " << k << " | " << std::string(size_t(bar), '#')
                  << " " << n << "\n";
    }
    return 0;
}
